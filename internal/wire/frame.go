// Package wire is the distributed execution backend's message plane: a
// length-prefixed binary framing with checksums and version handshake,
// a Transport abstraction with in-process and TCP implementations, a
// reliable per-peer link with reconnect and replay, and on top of those
// the worker daemon and coordinator that run one Banger schedule across
// several OS processes.
//
// The layering mirrors the single-process runner: exec.Session is the
// machinery of the processors one process hosts, and wire carries what
// used to travel over in-process channels — scheduled messages, idle
// and crash notifications, and the pause/replan/resume recovery
// protocol — between processes instead.
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
)

// Protocol constants.
const (
	// Magic opens every frame; a connection speaking anything else is
	// rejected at the first read.
	Magic uint16 = 0xBA46
	// ProtoVersion is the wire protocol version, checked in the
	// Hello/Welcome handshake and carried in every frame header.
	ProtoVersion byte = 1
	// HeaderLen is the fixed frame header size in bytes.
	HeaderLen = 24
	// MaxPayload bounds a frame payload (a corrupted length prefix must
	// not make a reader allocate gigabytes).
	MaxPayload = 16 << 20
)

// Type identifies a frame's meaning.
type Type byte

// Frame types. Hello/Welcome handshake a connection; Start ships the
// run bundle; Data carries one scheduled message; Ack carries the
// receiver's cumulative sequenced-frame watermark; Heartbeat carries a
// liveness beat with the sender's progress counter; Idle/Crash are
// worker reports; Pause/Parked/Resume drive the distributed recovery
// barrier; Finish/Result/Bye end a run; Error aborts it; Ping/Pong are
// latency-calibration echoes.
const (
	THello Type = iota + 1
	TWelcome
	TStart
	TData
	TAck
	THeartbeat
	TIdle
	TCrash
	TPause
	TParked
	TResume
	TFinish
	TResult
	TError
	TPing
	TPong
	TBye
	// TJoin and TDrain are fleet-elasticity controls: Join announces a
	// worker that wants to enter a run in flight (on the coordinator's
	// control listener), Drain asks the coordinator to gracefully
	// evacuate a worker. Workers exchange TBye on mesh links to tear
	// them down immediately on a planned departure.
	TJoin
	TDrain
)

// String names the frame type.
func (t Type) String() string {
	switch t {
	case THello:
		return "hello"
	case TWelcome:
		return "welcome"
	case TStart:
		return "start"
	case TData:
		return "data"
	case TAck:
		return "ack"
	case THeartbeat:
		return "heartbeat"
	case TIdle:
		return "idle"
	case TCrash:
		return "crash"
	case TPause:
		return "pause"
	case TParked:
		return "parked"
	case TResume:
		return "resume"
	case TFinish:
		return "finish"
	case TResult:
		return "result"
	case TError:
		return "error"
	case TPing:
		return "ping"
	case TPong:
		return "pong"
	case TBye:
		return "bye"
	case TJoin:
		return "join"
	case TDrain:
		return "drain"
	default:
		return fmt.Sprintf("type(%d)", byte(t))
	}
}

// Frame is one protocol message. Wid is the reliable-delivery sequence
// number for frames that must survive a reconnect (0 = unsequenced:
// handshake, acks, heartbeats and echoes).
//
// Frame layout (all integers big-endian):
//
//	offset size field
//	0      2    magic (0xBA46)
//	2      1    protocol version
//	3      1    frame type
//	4      8    wid (reliable sequence number, 0 = unsequenced)
//	12     4    payload length
//	16     8    fnv64a checksum of the payload
//	24     n    payload
type Frame struct {
	Type    Type
	Wid     uint64
	Payload []byte
}

// WriteFrame encodes and writes one frame. It returns the number of
// bytes written (for wire accounting) and the first error.
func WriteFrame(w io.Writer, f Frame) (int, error) {
	if len(f.Payload) > MaxPayload {
		return 0, fmt.Errorf("wire: payload of %d bytes exceeds limit %d", len(f.Payload), MaxPayload)
	}
	var hdr [HeaderLen]byte
	binary.BigEndian.PutUint16(hdr[0:2], Magic)
	hdr[2] = ProtoVersion
	hdr[3] = byte(f.Type)
	binary.BigEndian.PutUint64(hdr[4:12], f.Wid)
	binary.BigEndian.PutUint32(hdr[12:16], uint32(len(f.Payload)))
	binary.BigEndian.PutUint64(hdr[16:24], fnv64a(f.Payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if len(f.Payload) > 0 {
		if _, err := w.Write(f.Payload); err != nil {
			return HeaderLen, err
		}
	}
	return HeaderLen + len(f.Payload), nil
}

// ReadFrame reads and verifies one frame. It returns the number of
// bytes consumed and fails on a bad magic, an unknown protocol version,
// an oversized payload or a checksum mismatch.
func ReadFrame(r io.Reader) (Frame, int, error) {
	var hdr [HeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, 0, err
	}
	if m := binary.BigEndian.Uint16(hdr[0:2]); m != Magic {
		return Frame{}, HeaderLen, fmt.Errorf("wire: bad magic %#04x (not a banger peer?)", m)
	}
	if v := hdr[2]; v != ProtoVersion {
		return Frame{}, HeaderLen, fmt.Errorf("wire: protocol version %d, this binary speaks %d", v, ProtoVersion)
	}
	n := binary.BigEndian.Uint32(hdr[12:16])
	if n > MaxPayload {
		return Frame{}, HeaderLen, fmt.Errorf("wire: payload length %d exceeds limit %d", n, MaxPayload)
	}
	f := Frame{Type: Type(hdr[3]), Wid: binary.BigEndian.Uint64(hdr[4:12])}
	if n > 0 {
		f.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return Frame{}, HeaderLen, err
		}
	}
	if sum := binary.BigEndian.Uint64(hdr[16:24]); sum != fnv64a(f.Payload) {
		return Frame{}, HeaderLen + int(n), fmt.Errorf("wire: %s frame payload checksum mismatch", f.Type)
	}
	return f, HeaderLen + int(n), nil
}

// fnv64a hashes a payload with the same function the runner uses for
// end-to-end message checksums.
func fnv64a(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}
