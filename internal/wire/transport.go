package wire

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"time"
)

// Conn is one framed, bidirectional peer connection. WriteFrame and
// ReadFrame are each safe for one concurrent caller (the usual pattern:
// one reader goroutine, writers serialized by a Link's mutex).
type Conn interface {
	WriteFrame(f Frame) error
	// WriteFrameBuffered queues a frame in the connection's write buffer
	// without forcing it onto the wire. A later Flush — or any immediate
	// WriteFrame on the same connection — drives it out in order. This is
	// the frame-coalescing primitive: many small data frames share one
	// write/flush instead of paying one each.
	WriteFrameBuffered(f Frame) error
	// Flush forces previously buffered frames onto the wire.
	Flush() error
	ReadFrame() (Frame, error)
	// Stats returns bytes read and written on this connection.
	Stats() (in, out int64)
	Close() error
}

// Listener accepts peer connections.
type Listener interface {
	Accept() (Conn, error)
	// Addr is the bound address (with the real port when the requested
	// one was 0).
	Addr() string
	Close() error
}

// Transport creates listeners and connections: TCP() for real
// multi-process runs, Inproc() for deterministic in-memory runs that
// exercise the identical protocol machinery.
type Transport interface {
	Listen(addr string) (Listener, error)
	Dial(ctx context.Context, addr string) (Conn, error)
}

// ---------------------------------------------------------------------
// TCP transport: length-prefixed frames over loopback or a real
// network.

type tcpTransport struct{}

// TCP returns the TCP transport.
func TCP() Transport { return tcpTransport{} }

func (tcpTransport) Listen(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return tcpListener{l}, nil
}

func (tcpTransport) Dial(ctx context.Context, addr string) (Conn, error) {
	var d net.Dialer
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		// Frames are already batched writes; don't let Nagle delay the
		// small control frames behind them.
		tc.SetNoDelay(true)
	}
	return newTCPConn(c), nil
}

type tcpListener struct{ l net.Listener }

func (t tcpListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return newTCPConn(c), nil
}

func (t tcpListener) Addr() string { return t.l.Addr().String() }
func (t tcpListener) Close() error { return t.l.Close() }

type tcpConn struct {
	c  net.Conn
	br *bufio.Reader

	wmu sync.Mutex
	bw  *bufio.Writer

	smu     sync.Mutex
	in, out int64
}

// tcpBufSize sizes the per-connection read and write buffers. Large
// enough that a coalesced burst of small data frames becomes one
// syscall, small enough to keep buffered-but-unflushed latency bounded
// by the flush interval rather than memory pressure.
const tcpBufSize = 64 << 10

func newTCPConn(c net.Conn) *tcpConn {
	return &tcpConn{c: c, br: bufio.NewReaderSize(c, tcpBufSize), bw: bufio.NewWriterSize(c, tcpBufSize)}
}

func (t *tcpConn) WriteFrame(f Frame) error {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	// Sharing bw with WriteFrameBuffered means an immediate write also
	// flushes anything still coalescing — order is preserved.
	n, err := WriteFrame(t.bw, f)
	if err == nil {
		err = t.bw.Flush()
	}
	t.smu.Lock()
	t.out += int64(n)
	t.smu.Unlock()
	return err
}

func (t *tcpConn) WriteFrameBuffered(f Frame) error {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	n, err := WriteFrame(t.bw, f)
	t.smu.Lock()
	t.out += int64(n)
	t.smu.Unlock()
	return err
}

func (t *tcpConn) Flush() error {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	return t.bw.Flush()
}

func (t *tcpConn) ReadFrame() (Frame, error) {
	f, n, err := ReadFrame(t.br)
	t.smu.Lock()
	t.in += int64(n)
	t.smu.Unlock()
	return f, err
}

func (t *tcpConn) Stats() (int64, int64) {
	t.smu.Lock()
	defer t.smu.Unlock()
	return t.in, t.out
}

func (t *tcpConn) Close() error { return t.c.Close() }

// ---------------------------------------------------------------------
// In-process transport: the same protocol over in-memory queues. One
// Inproc() value is an isolated namespace of addresses; listeners and
// dialers must share it.

// Inproc returns a new in-memory transport namespace.
func Inproc() Transport {
	return &inprocTransport{listeners: map[string]*inprocListener{}}
}

type inprocTransport struct {
	mu        sync.Mutex
	listeners map[string]*inprocListener
}

func (t *inprocTransport) Listen(addr string) (Listener, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, taken := t.listeners[addr]; taken {
		return nil, fmt.Errorf("wire: inproc address %q already in use", addr)
	}
	l := &inprocListener{t: t, addr: addr, dials: make(chan *inprocConn), closed: make(chan struct{})}
	t.listeners[addr] = l
	return l, nil
}

func (t *inprocTransport) Dial(ctx context.Context, addr string) (Conn, error) {
	t.mu.Lock()
	l := t.listeners[addr]
	t.mu.Unlock()
	if l == nil {
		return nil, fmt.Errorf("wire: inproc dial %q: connection refused", addr)
	}
	a, b := inprocPair()
	select {
	case l.dials <- b:
		return a, nil
	case <-l.closed:
		return nil, fmt.Errorf("wire: inproc dial %q: connection refused", addr)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

type inprocListener struct {
	t      *inprocTransport
	addr   string
	dials  chan *inprocConn
	closed chan struct{}
	once   sync.Once
}

func (l *inprocListener) Accept() (Conn, error) {
	select {
	case c := <-l.dials:
		return c, nil
	case <-l.closed:
		return nil, fmt.Errorf("wire: inproc listener %q closed", l.addr)
	}
}

func (l *inprocListener) Addr() string { return l.addr }

func (l *inprocListener) Close() error {
	l.once.Do(func() {
		close(l.closed)
		l.t.mu.Lock()
		delete(l.t.listeners, l.addr)
		l.t.mu.Unlock()
	})
	return nil
}

// inprocConn is one side of an in-memory duplex frame queue.
type inprocConn struct {
	send   chan Frame
	recv   chan Frame
	closed chan struct{} // this side closed
	peer   chan struct{} // other side closed
	once   sync.Once

	pmu     sync.Mutex
	pending []Frame // buffered, not yet delivered to the peer queue

	smu     sync.Mutex
	in, out int64
}

func inprocPair() (*inprocConn, *inprocConn) {
	ab := make(chan Frame, 256)
	ba := make(chan Frame, 256)
	ca := make(chan struct{})
	cb := make(chan struct{})
	a := &inprocConn{send: ab, recv: ba, closed: ca, peer: cb}
	b := &inprocConn{send: ba, recv: ab, closed: cb, peer: ca}
	return a, b
}

// frameBytes is the encoded size a frame would occupy on a byte stream,
// so the in-process transport reports comparable wire accounting.
func frameBytes(f Frame) int64 { return int64(HeaderLen + len(f.Payload)) }

func (c *inprocConn) WriteFrame(f Frame) error {
	// Buffered frames must hit the peer queue before this one.
	if err := c.Flush(); err != nil {
		return err
	}
	// Copy the payload: the in-memory path must not alias sender
	// buffers any more than a real wire would.
	if f.Payload != nil {
		f.Payload = append([]byte(nil), f.Payload...)
	}
	return c.deliver(f)
}

func (c *inprocConn) WriteFrameBuffered(f Frame) error {
	// Copy at buffer time: the sender may recycle the payload as soon as
	// the call returns, exactly as a byte stream would have consumed it.
	if f.Payload != nil {
		f.Payload = append([]byte(nil), f.Payload...)
	}
	select {
	case <-c.closed:
		return fmt.Errorf("wire: inproc connection closed")
	case <-c.peer:
		return fmt.Errorf("wire: inproc peer closed")
	default:
	}
	c.pmu.Lock()
	c.pending = append(c.pending, f)
	c.pmu.Unlock()
	return nil
}

func (c *inprocConn) Flush() error {
	c.pmu.Lock()
	pend := c.pending
	c.pending = nil
	c.pmu.Unlock()
	for _, f := range pend {
		if err := c.deliver(f); err != nil {
			// The connection is broken; the remainder is lost with it.
			// Reliable frames live in a Link outbox and replay elsewhere.
			return err
		}
	}
	return nil
}

func (c *inprocConn) deliver(f Frame) error {
	select {
	case c.send <- f:
		c.smu.Lock()
		c.out += frameBytes(f)
		c.smu.Unlock()
		return nil
	case <-c.closed:
		return fmt.Errorf("wire: inproc connection closed")
	case <-c.peer:
		return fmt.Errorf("wire: inproc peer closed")
	}
}

func (c *inprocConn) ReadFrame() (Frame, error) {
	select {
	case f := <-c.recv:
		c.smu.Lock()
		c.in += frameBytes(f)
		c.smu.Unlock()
		return f, nil
	case <-c.closed:
		return Frame{}, fmt.Errorf("wire: inproc connection closed")
	case <-c.peer:
		// Drain frames the peer queued before closing.
		select {
		case f := <-c.recv:
			c.smu.Lock()
			c.in += frameBytes(f)
			c.smu.Unlock()
			return f, nil
		default:
			return Frame{}, fmt.Errorf("wire: inproc peer closed")
		}
	}
}

func (c *inprocConn) Stats() (int64, int64) {
	c.smu.Lock()
	defer c.smu.Unlock()
	return c.in, c.out
}

func (c *inprocConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}

// dialBackoff dials addr with capped exponential backoff until ctx
// expires: the same discipline the runner's reliable in-process
// transport applies to retransmissions, applied to connections.
func dialBackoff(ctx context.Context, t Transport, addr string, base, cap time.Duration) (Conn, error) {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if cap <= 0 {
		cap = time.Second
	}
	delay := base
	for {
		c, err := t.Dial(ctx, addr)
		if err == nil {
			return c, nil
		}
		if ctx.Err() != nil {
			return nil, fmt.Errorf("wire: dialing %s: %w (last error: %v)", addr, ctx.Err(), err)
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return nil, fmt.Errorf("wire: dialing %s: %w (last error: %v)", addr, ctx.Err(), err)
		}
		if delay *= 2; delay > cap {
			delay = cap
		}
	}
}
