package wire

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/sched"
)

// Fleet keeps a pool of worker daemons alive across many runs. A
// coordinator run is a one-shot affair — it dials a fixed address
// list, and connectAll is all-or-nothing — so a long-running service
// needs a layer above it that remembers who is in the fleet, hears
// workers announce themselves, drops members whose daemons have died,
// and hands each run's coordinator a live address list.
//
// Worker daemons host any number of runs concurrently (each keyed by
// its run ID), so the fleet runs them concurrently too: every Run call
// places its coordinator on the least-loaded member subset and starts
// it immediately, up to the MaxRuns cap. Placement is load-aware — the
// fleet tracks how many runs each worker currently hosts and picks the
// members hosting fewest, so concurrent runs spread over the pool
// instead of piling onto one daemon.
//
// Membership flows through the same TJoin/TDrain control protocol the
// coordinator speaks: the fleet owns the control listener permanently
// and forwards fleet changes to every run in flight. A join announce
// records the member and is offered to each active coordinator (a run
// with dead processors integrates the joiner at its next barrier; the
// rest reject it as steady-state noise — announce loops re-offer every
// cycle). A drain evacuates the worker from every run it hosts — one
// checkpoint handover per hosted run — before the member is removed,
// so `banger drain` still means "this process may exit losing
// nothing", however many runs it was serving.
type Fleet struct {
	Transport Transport
	// Control is the persistent control listen address (port 0 picks a
	// free one; Addr reports the bound address).
	Control string
	// Seed lists initial member addresses (may be empty: workers join
	// by announcing).
	Seed []string
	// MinWorkers refuses drains that would leave fewer live members
	// (0 = only forbid draining the last one).
	MinWorkers int
	// MaxRuns caps concurrently executing fleet runs; Run blocks for a
	// slot past it (0 = unlimited — callers like the serving layer
	// usually bound admission themselves).
	MaxRuns int

	// Per-run coordinator knobs, passed through to every run.
	HeartbeatEvery time.Duration
	PeerTimeout    time.Duration
	FlushEvery     time.Duration
	Mesh           bool
	Logf           func(string, ...any)

	mu      sync.Mutex // guards members, load, active, lis, closed
	members map[string]bool
	load    map[string]int        // runs currently placed per member address
	active  map[*Coordinator]bool // coordinators with a run in flight
	lis     Listener
	bound   string
	closed  bool
	wg      sync.WaitGroup
	slots   chan struct{} // MaxRuns semaphore (nil = unlimited)
}

// Start records the seed members and opens the control listener. The
// fleet serves joins and drains until Close.
func (f *Fleet) Start() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.Logf == nil {
		f.Logf = func(string, ...any) {}
	}
	if f.members != nil {
		return fmt.Errorf("wire: fleet already started")
	}
	f.members = map[string]bool{}
	for _, a := range f.Seed {
		f.members[a] = true
	}
	f.load = map[string]int{}
	f.active = map[*Coordinator]bool{}
	if f.MaxRuns > 0 {
		f.slots = make(chan struct{}, f.MaxRuns)
	}
	if f.Control == "" {
		return fmt.Errorf("wire: fleet needs a control listen address")
	}
	f.bound = f.Control
	return f.listenLocked()
}

// listenLocked opens the control listener and spawns its accept loop.
// Callers hold f.mu.
func (f *Fleet) listenLocked() error {
	lis, err := f.Transport.Listen(f.bound)
	if err != nil {
		return fmt.Errorf("wire: fleet control listen %s: %w", f.bound, err)
	}
	f.lis = lis
	f.bound = lis.Addr() // resolve ":0" once
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		for {
			c, err := lis.Accept()
			if err != nil {
				return
			}
			f.wg.Add(1)
			go func() {
				defer f.wg.Done()
				f.control(c)
			}()
		}
	}()
	return nil
}

// Addr is the bound control address.
func (f *Fleet) Addr() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.bound
}

// Size is the current member count.
func (f *Fleet) Size() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.members)
}

// Members returns the member addresses, sorted for deterministic
// worker indexing.
func (f *Fleet) Members() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.members))
	for a := range f.members {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// ActiveRuns reports how many fleet runs are currently in flight.
func (f *Fleet) ActiveRuns() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.active)
}

// coordinators snapshots the active run set.
func (f *Fleet) coordinators() []*Coordinator {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*Coordinator, 0, len(f.active))
	for co := range f.active {
		out = append(out, co)
	}
	return out
}

// control answers one control connection: a join adds the member and is
// offered to every run in flight, a drain evacuates the worker from
// every run it hosts and then removes it (respecting the MinWorkers
// floor). The first frame must arrive promptly — a stuck dialer must
// not wedge the accept path.
func (f *Fleet) control(c Conn) {
	defer c.Close()
	guard := time.AfterFunc(10*time.Second, func() { c.Close() })
	defer guard.Stop()
	fr, err := c.ReadFrame()
	if err != nil {
		return
	}
	switch fr.Type {
	case TJoin:
		note, err := decJSON[JoinNote](fr.Payload, "join")
		if err != nil || note.Addr == "" {
			rejectConn(c, "malformed join announce")
			return
		}
		f.mu.Lock()
		known := f.members[note.Addr]
		if !known && !f.closed {
			f.members[note.Addr] = true
		}
		closed := f.closed
		f.mu.Unlock()
		if closed {
			rejectConn(c, "fleet is shutting down")
			return
		}
		if !known {
			f.Logf("fleet: worker %s joined (%d members)", note.Addr, f.Size())
		}
		c.WriteFrame(Frame{Type: TWelcome})
		c.Close()
		// Offer the worker to every run in flight. Most reject it
		// (no dead processors, a barrier already forming) — that is
		// steady-state noise, and announce loops re-offer every cycle —
		// but a run that lost a worker picks the joiner up here.
		for _, co := range f.coordinators() {
			jctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			if err := co.SubmitJoin(jctx, note.Addr); err == nil {
				f.Logf("fleet: worker %s joined a run in flight", note.Addr)
			}
			cancel()
		}
	case TDrain:
		note, err := decJSON[DrainNote](fr.Payload, "drain")
		if err != nil || note.Addr == "" {
			rejectConn(c, "fleet drain needs a worker address (-addr)")
			return
		}
		floor := f.MinWorkers
		if floor < 1 {
			floor = 1
		}
		f.mu.Lock()
		member, n := f.members[note.Addr], len(f.members)
		f.mu.Unlock()
		switch {
		case !member:
			rejectConn(c, fmt.Sprintf("no member %s", note.Addr))
			return
		case n <= floor:
			rejectConn(c, fmt.Sprintf("drain would leave %d live workers (floor %d)", n-1, floor))
			return
		}
		// Evacuate the worker from every run it hosts: each run pauses,
		// takes the checkpoint handover, replans onto its survivors and
		// says goodbye. Only then may the member leave the pool.
		for _, co := range f.coordinators() {
			dctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			err := co.SubmitDrain(dctx, -1, note.Addr)
			cancel()
			if err == nil || drainIrrelevant(err) {
				continue
			}
			rejectConn(c, fmt.Sprintf("drain deferred: %v; retry", err))
			return
		}
		f.mu.Lock()
		delete(f.members, note.Addr)
		n = len(f.members)
		f.mu.Unlock()
		f.Logf("fleet: worker %s drained (%d members)", note.Addr, n)
		c.WriteFrame(Frame{Type: TWelcome})
	default:
		rejectConn(c, fmt.Sprintf("unexpected %s on the fleet control connection", fr.Type))
	}
}

// drainIrrelevant reports whether a per-run drain rejection means the
// run simply does not (or no longer) involves the worker — which is
// fine — as opposed to a real obstacle worth surfacing.
func drainIrrelevant(err error) bool {
	s := err.Error()
	return strings.Contains(s, "no such worker") ||
		strings.Contains(s, "already drained") ||
		strings.Contains(s, "already lost") ||
		strings.Contains(s, "no run in flight") ||
		strings.Contains(s, "run ended before the fleet change")
}

// probe dials every member and drops the ones whose daemons are gone.
// A bare dial-and-close is deliberate: it proves the daemon's listener
// is alive without occupying a run-table slot or starting a handshake.
// Returns the live members, sorted.
func (f *Fleet) probe(ctx context.Context) []string {
	members := f.Members()
	live := make([]string, 0, len(members))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, a := range members {
		wg.Add(1)
		go func(a string) {
			defer wg.Done()
			dctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			defer cancel()
			c, err := f.Transport.Dial(dctx, a)
			if err != nil {
				f.mu.Lock()
				delete(f.members, a)
				f.mu.Unlock()
				f.Logf("fleet: dropping dead worker %s: %v", a, err)
				return
			}
			c.Close()
			mu.Lock()
			live = append(live, a)
			mu.Unlock()
		}(a)
	}
	wg.Wait()
	sort.Strings(live)
	return live
}

// place picks the run's worker subset: the numPE least-loaded live
// members (ties broken by address for determinism), returned sorted so
// worker indices are stable. A run never needs more workers than the
// machine has processors.
func (f *Fleet) place(live []string, numPE int) []string {
	n := len(live)
	if numPE > 0 && numPE < n {
		n = numPE
	}
	byLoad := append([]string(nil), live...)
	f.mu.Lock()
	sort.SliceStable(byLoad, func(i, j int) bool {
		li, lj := f.load[byLoad[i]], f.load[byLoad[j]]
		if li != lj {
			return li < lj
		}
		return byLoad[i] < byLoad[j]
	})
	f.mu.Unlock()
	placed := byLoad[:n]
	sort.Strings(placed)
	return placed
}

// Run executes one schedule on the fleet. Runs are concurrent: each
// call probes the membership, places its coordinator on the
// least-loaded live subset, and starts it immediately (blocking for a
// slot only when MaxRuns caps the fleet). Worker daemons multiplex the
// runs placed on them, keyed by run ID.
//
// A worker that dies after the probe but before the coordinator's
// all-or-nothing connect fails that attempt; the coordinator's own
// crash recovery only covers deaths after the run is underway. Runs
// are pure computations, so when an attempt fails AND a re-probe shows
// the fleet shrank — the failure explained by a membership change —
// the run is retried from scratch on the survivors. Failures with a
// stable fleet (a broken design, an unschedulable machine) surface
// immediately.
func (f *Fleet) Run(ctx context.Context, runner *exec.Runner, sc *sched.Schedule, flat *graph.Flat) (*exec.Result, error) {
	f.mu.Lock()
	slots := f.slots
	f.mu.Unlock()
	if slots != nil {
		select {
		case slots <- struct{}{}:
			defer func() { <-slots }()
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	numPE := 0
	if sc != nil && sc.Machine != nil {
		numPE = sc.Machine.NumPE()
	}
	for attempt := 0; ; attempt++ {
		live := f.probe(ctx)
		if len(live) == 0 {
			return nil, fmt.Errorf("wire: fleet has no live workers")
		}
		placed := f.place(live, numPE)
		res, err := f.runOnce(ctx, runner, sc, flat, placed)
		if err == nil || ctx.Err() != nil || attempt >= 2 {
			return res, err
		}
		// Retry only when the re-probe drops someone from the attempted
		// set — a join arriving at the same time must not mask the death,
		// so this checks for lost members, not a changed count.
		relive := f.probe(ctx)
		alive := make(map[string]bool, len(relive))
		for _, a := range relive {
			alive[a] = true
		}
		lost := 0
		for _, a := range placed {
			if !alive[a] {
				lost++
			}
		}
		if lost == 0 {
			return res, err
		}
		f.Logf("fleet: run failed (%v); %d of %d workers died, retrying on survivors",
			err, lost, len(placed))
	}
}

// runOnce executes one coordinator run over the placed members,
// registering it with the control plane (joins and drains forward to
// it) and in the load accounting for the duration.
func (f *Fleet) runOnce(ctx context.Context, runner *exec.Runner, sc *sched.Schedule, flat *graph.Flat, placed []string) (*exec.Result, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, fmt.Errorf("wire: fleet is closed")
	}
	co := &Coordinator{
		Transport: f.Transport, Addrs: placed, Runner: runner,
		HeartbeatEvery: f.HeartbeatEvery, PeerTimeout: f.PeerTimeout,
		FlushEvery: f.FlushEvery, Mesh: f.Mesh,
		MinWorkers: f.MinWorkers,
		Logf:       f.Logf,
	}
	f.active[co] = true
	for _, a := range placed {
		f.load[a]++
	}
	f.mu.Unlock()

	res, err := co.Run(ctx, sc, flat)

	f.mu.Lock()
	delete(f.active, co)
	for _, a := range placed {
		if f.load[a] > 0 {
			f.load[a]--
		}
	}
	f.mu.Unlock()
	return res, err
}

// Close stops the control listener and waits the accept machinery out.
// Any run in flight finishes on its own coordinator.
func (f *Fleet) Close() {
	f.mu.Lock()
	f.closed = true
	lis := f.lis
	f.lis = nil
	f.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	f.wg.Wait()
}
