package wire

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/sched"
)

// Fleet keeps a pool of worker daemons alive across many runs. A
// coordinator run is a one-shot affair — it dials a fixed address
// list, and connectAll is all-or-nothing — so a long-running service
// needs a layer above it that remembers who is in the fleet, hears
// workers announce themselves between runs, drops members whose
// daemons have died, and hands the coordinator a live address list
// for every run.
//
// Membership flows through the same TJoin/TDrain control protocol the
// coordinator speaks mid-run: the fleet owns a persistent control
// listener at Control, and when a run starts it lends that address to
// the run's coordinator (whose own control listener then handles
// mid-run joins, drains and recovery hand-offs), taking it back the
// moment the run ends. Workers announce on a loop (`banger worker
// -join`), so whichever listener is up at that instant hears them:
// between runs the fleet records the member, mid-run the coordinator
// welcomes it into a recovery or rejects it as steady-state noise.
//
// Runs are serialized: worker daemons host one run at a time, so the
// fleet hands out its workers under a lease. Callers that want
// concurrency run elsewhere (the serving layer executes cache-hot
// small runs in-process and reserves the fleet for the runs worth
// distributing).
type Fleet struct {
	Transport Transport
	// Control is the persistent control listen address (port 0 picks a
	// free one; Addr reports the bound address).
	Control string
	// Seed lists initial member addresses (may be empty: workers join
	// by announcing).
	Seed []string
	// MinWorkers refuses between-run drains that would leave fewer
	// live members (0 = only forbid draining the last one).
	MinWorkers int

	// Per-run coordinator knobs, passed through to every run.
	HeartbeatEvery time.Duration
	PeerTimeout    time.Duration
	FlushEvery     time.Duration
	Mesh           bool
	Logf           func(string, ...any)

	mu      sync.Mutex // guards members, lis, closed
	members map[string]bool
	lis     Listener
	bound   string
	closed  bool
	wg      sync.WaitGroup

	runMu sync.Mutex // the run lease: one coordinator at a time
}

// Start records the seed members and opens the control listener. The
// fleet serves joins and drains until Close.
func (f *Fleet) Start() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.Logf == nil {
		f.Logf = func(string, ...any) {}
	}
	if f.members != nil {
		return fmt.Errorf("wire: fleet already started")
	}
	f.members = map[string]bool{}
	for _, a := range f.Seed {
		f.members[a] = true
	}
	if f.Control == "" {
		return fmt.Errorf("wire: fleet needs a control listen address")
	}
	f.bound = f.Control
	return f.listenLocked()
}

// listenLocked (re)opens the control listener and spawns its accept
// loop. Callers hold f.mu.
func (f *Fleet) listenLocked() error {
	lis, err := f.Transport.Listen(f.bound)
	if err != nil {
		return fmt.Errorf("wire: fleet control listen %s: %w", f.bound, err)
	}
	f.lis = lis
	f.bound = lis.Addr() // resolve ":0" once, keep the port across relistens
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		for {
			c, err := lis.Accept()
			if err != nil {
				return
			}
			f.wg.Add(1)
			go func() {
				defer f.wg.Done()
				f.control(c)
			}()
		}
	}()
	return nil
}

// Addr is the bound control address.
func (f *Fleet) Addr() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.bound
}

// Size is the current member count.
func (f *Fleet) Size() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.members)
}

// Members returns the member addresses, sorted for deterministic
// worker indexing.
func (f *Fleet) Members() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.members))
	for a := range f.members {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// control answers one between-run control connection: a join adds the
// member, a drain removes it (respecting the MinWorkers floor). The
// first frame must arrive promptly — a stuck dialer must not wedge the
// accept path.
func (f *Fleet) control(c Conn) {
	defer c.Close()
	guard := time.AfterFunc(10*time.Second, func() { c.Close() })
	defer guard.Stop()
	fr, err := c.ReadFrame()
	if err != nil {
		return
	}
	switch fr.Type {
	case TJoin:
		note, err := decJSON[JoinNote](fr.Payload, "join")
		if err != nil || note.Addr == "" {
			rejectConn(c, "malformed join announce")
			return
		}
		f.mu.Lock()
		known := f.members[note.Addr]
		if !known && !f.closed {
			f.members[note.Addr] = true
		}
		closed := f.closed
		f.mu.Unlock()
		if closed {
			rejectConn(c, "fleet is shutting down")
			return
		}
		if !known {
			f.Logf("fleet: worker %s joined (%d members)", note.Addr, f.Size())
		}
		c.WriteFrame(Frame{Type: TWelcome})
	case TDrain:
		note, err := decJSON[DrainNote](fr.Payload, "drain")
		if err != nil || note.Addr == "" {
			rejectConn(c, "fleet drain needs a worker address (-addr)")
			return
		}
		floor := f.MinWorkers
		if floor < 1 {
			floor = 1
		}
		f.mu.Lock()
		switch {
		case !f.members[note.Addr]:
			f.mu.Unlock()
			rejectConn(c, fmt.Sprintf("no member %s", note.Addr))
		case len(f.members) <= floor:
			f.mu.Unlock()
			rejectConn(c, fmt.Sprintf("drain would leave %d live workers (floor %d)", len(f.members)-1, floor))
		default:
			delete(f.members, note.Addr)
			n := len(f.members)
			f.mu.Unlock()
			f.Logf("fleet: worker %s drained (%d members)", note.Addr, n)
			c.WriteFrame(Frame{Type: TWelcome})
		}
	default:
		rejectConn(c, fmt.Sprintf("unexpected %s on the fleet control connection", fr.Type))
	}
}

// probe dials every member and drops the ones whose daemons are gone.
// A bare dial-and-close is deliberate: it proves the daemon's listener
// is alive without starting a handshake the daemon could mistake for a
// superseding coordinator. Returns the live members, sorted.
func (f *Fleet) probe(ctx context.Context) []string {
	members := f.Members()
	live := make([]string, 0, len(members))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, a := range members {
		wg.Add(1)
		go func(a string) {
			defer wg.Done()
			dctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			defer cancel()
			c, err := f.Transport.Dial(dctx, a)
			if err != nil {
				f.mu.Lock()
				delete(f.members, a)
				f.mu.Unlock()
				f.Logf("fleet: dropping dead worker %s: %v", a, err)
				return
			}
			c.Close()
			mu.Lock()
			live = append(live, a)
			mu.Unlock()
		}(a)
	}
	wg.Wait()
	sort.Strings(live)
	return live
}

// Run executes one schedule on the fleet. It takes the run lease
// (blocking behind any run in flight), probes the membership, lends
// the control address to the run's coordinator — so mid-run joins,
// drains and crash recoveries ride the elastic machinery — and
// reopens the fleet listener when the run ends.
//
// A worker that dies after the probe but before the coordinator's
// all-or-nothing connect fails that attempt; the coordinator's own
// crash recovery only covers deaths after the run is underway. Runs
// are pure computations, so when an attempt fails AND a re-probe shows
// the fleet shrank — the failure explained by a membership change —
// the run is retried from scratch on the survivors. Failures with a
// stable fleet (a broken design, an unschedulable machine) surface
// immediately.
func (f *Fleet) Run(ctx context.Context, runner *exec.Runner, sc *sched.Schedule, flat *graph.Flat) (*exec.Result, error) {
	f.runMu.Lock()
	defer f.runMu.Unlock()

	for attempt := 0; ; attempt++ {
		live := f.probe(ctx)
		if len(live) == 0 {
			return nil, fmt.Errorf("wire: fleet has no live workers")
		}
		res, err := f.runOnce(ctx, runner, sc, flat, live)
		if err == nil || ctx.Err() != nil || attempt >= 2 {
			return res, err
		}
		// Retry only when the re-probe drops someone from the attempted
		// set — a join arriving at the same time must not mask the death,
		// so this checks for lost members, not a changed count.
		relive := f.probe(ctx)
		alive := make(map[string]bool, len(relive))
		for _, a := range relive {
			alive[a] = true
		}
		lost := 0
		for _, a := range live {
			if !alive[a] {
				lost++
			}
		}
		if lost == 0 {
			return res, err
		}
		f.Logf("fleet: run failed (%v); %d of %d workers died, retrying on survivors",
			err, lost, len(live))
	}
}

// runOnce executes one coordinator run over the given live members,
// lending it the control address for the duration.
func (f *Fleet) runOnce(ctx context.Context, runner *exec.Runner, sc *sched.Schedule, flat *graph.Flat, live []string) (*exec.Result, error) {
	// Lend the control address to the run.
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, fmt.Errorf("wire: fleet is closed")
	}
	lis := f.lis
	f.lis = nil
	control := f.bound
	f.mu.Unlock()
	if lis != nil {
		lis.Close()
	}

	co := &Coordinator{
		Transport: f.Transport, Addrs: live, Runner: runner,
		HeartbeatEvery: f.HeartbeatEvery, PeerTimeout: f.PeerTimeout,
		FlushEvery: f.FlushEvery, Mesh: f.Mesh,
		Control: control, MinWorkers: f.MinWorkers,
		Logf: f.Logf,
	}
	res, err := co.Run(ctx, sc, flat)

	// Take the control address back. Workers that joined or departed
	// mid-run re-announce on their own loops and are folded back into
	// the membership here.
	f.mu.Lock()
	if !f.closed {
		if lerr := f.listenLocked(); lerr != nil {
			f.Logf("fleet: relisten on %s: %v", f.bound, lerr)
		}
	}
	f.mu.Unlock()
	return res, err
}

// Close stops the control listener and waits the accept machinery out.
// Any run in flight finishes on its own coordinator.
func (f *Fleet) Close() {
	f.mu.Lock()
	f.closed = true
	lis := f.lis
	f.lis = nil
	f.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	f.wg.Wait()
}
