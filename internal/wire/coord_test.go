package wire

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/pits"
	"repro/internal/sched"
	"repro/internal/trace"
)

// scripted is a hand-driven fake worker: it speaks just enough of the
// protocol to steer the coordinator's state machine into corners a real
// session never reaches on cue.
type scripted struct {
	t *testing.T
	c Conn
	l *Link
}

// acceptScripted accepts the coordinator's dial and answers the
// handshake.
func acceptScripted(t *testing.T, ln Listener) *scripted {
	t.Helper()
	c, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	f, err := c.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != THello {
		t.Fatalf("expected hello, got %s", f.Type)
	}
	if err := c.WriteFrame(Frame{Type: TWelcome, Payload: encJSON(Welcome{Proto: ProtoVersion})}); err != nil {
		t.Fatal(err)
	}
	return &scripted{t: t, c: c, l: NewLink(c)}
}

// readUntil consumes (and acks) frames until one of type ty arrives.
func (w *scripted) readUntil(ty Type) Frame {
	w.t.Helper()
	deadline := time.After(5 * time.Second)
	got := make(chan Frame, 1)
	fail := make(chan error, 1)
	go func() {
		for {
			f, err := w.c.ReadFrame()
			if err != nil {
				fail <- err
				return
			}
			if f.Wid != 0 && w.l.Accept(f) {
				w.c.WriteFrame(Frame{Type: TAck, Payload: encU64(w.l.Rcvd())})
			}
			if f.Type == ty {
				got <- f
				return
			}
		}
	}()
	select {
	case f := <-got:
		return f
	case err := <-fail:
		w.t.Fatalf("waiting for %s: %v", ty, err)
	case <-deadline:
		w.t.Fatalf("no %s frame within 5s", ty)
	}
	return Frame{}
}

// steerToFinishing runs a coordinator against two scripted workers and
// walks them to the finishing state: start bundles received, both
// workers idle, Finish broadcast. Returns the workers and the run's
// result channel.
func steerToFinishing(t *testing.T) (*scripted, *scripted, chan error, chan *exec.Result, Transport) {
	t.Helper()
	flat, inputs := distDesign(t, 2, 2)
	m := distMachine(t, "hypercube:1")
	sc, err := sched.ETF{}.Schedule(flat.Graph, m)
	if err != nil {
		t.Fatal(err)
	}
	tr := Inproc()
	ln0, err := tr.Listen("w0")
	if err != nil {
		t.Fatal(err)
	}
	ln1, err := tr.Listen("w1")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln0.Close(); ln1.Close() })

	co := &Coordinator{
		Transport: tr, Addrs: []string{"w0", "w1"}, Control: "ctl",
		Runner:         &exec.Runner{Inputs: inputs},
		HeartbeatEvery: 50 * time.Millisecond,
		// Long silence budget: the tests below must see the state
		// machine's own reaction, not a heartbeat-loss fallback.
		PeerTimeout: 60 * time.Second,
		Logf:        t.Logf,
	}
	errCh := make(chan error, 1)
	resCh := make(chan *exec.Result, 1)
	go func() {
		res, err := co.Run(context.Background(), sc, flat)
		resCh <- res
		errCh <- err
	}()
	w0 := acceptScripted(t, ln0)
	w1 := acceptScripted(t, ln1)
	w0.readUntil(TStart)
	w1.readUntil(TStart)
	if err := w0.l.Send(TIdle, nil); err != nil {
		t.Fatal(err)
	}
	if err := w1.l.Send(TIdle, nil); err != nil {
		t.Fatal(err)
	}
	w0.readUntil(TFinish)
	w1.readUntil(TFinish)
	return w0, w1, errCh, resCh, tr
}

// TestCoordCrashWhileFinishing: a crash report racing the finish
// decision must fail the run promptly. The old state machine fell
// through to startPause, waiting on a barrier the already-finished
// sessions could never answer — the run hung until heartbeat loss.
func TestCoordCrashWhileFinishing(t *testing.T) {
	w0, _, errCh, _, _ := steerToFinishing(t)
	if err := w0.l.Send(TCrash, encJSON(CrashNote{PE: 0})); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err == nil || !strings.Contains(err.Error(), "finishing") {
			t.Fatalf("got %v, want a crashed-while-finishing error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("coordinator hung on a crash report in the finishing state")
	}
}

// TestCoordParkedWhileFinishing: a stale Parked frame arriving after
// the finish decision (a replayed barrier reply) must be ignored, not
// kill the run as "parked outside a pause".
func TestCoordParkedWhileFinishing(t *testing.T) {
	w0, w1, errCh, resCh, _ := steerToFinishing(t)
	if err := w0.l.Send(TParked, encJSON(ParkedNote{})); err != nil {
		t.Fatal(err)
	}
	empty, err := EncodeEnv(pits.Env{})
	if err != nil {
		t.Fatal(err)
	}
	res := encJSON(ResultNote{Outputs: empty})
	if err := w0.l.Send(TResult, res); err != nil {
		t.Fatal(err)
	}
	if err := w1.l.Send(TResult, res); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("run failed on a stale parked frame: %v", err)
		}
		if r := <-resCh; r == nil {
			t.Fatal("run returned no result")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("coordinator hung after a stale parked frame")
	}
}

// flakyConn passes reads through but fails every write past the first
// failAfter: a half-closed connection, as a worker whose inbound
// direction died sees it.
type flakyConn struct {
	Conn
	mu        sync.Mutex
	writes    int
	failAfter int
}

func (c *flakyConn) broken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writes >= c.failAfter
}

func (c *flakyConn) WriteFrame(f Frame) error {
	c.mu.Lock()
	c.writes++
	fail := c.writes > c.failAfter
	c.mu.Unlock()
	if fail {
		return fmt.Errorf("wire: injected write failure")
	}
	return c.Conn.WriteFrame(f)
}

func (c *flakyConn) WriteFrameBuffered(f Frame) error {
	c.mu.Lock()
	c.writes++
	fail := c.writes > c.failAfter
	c.mu.Unlock()
	if fail {
		return fmt.Errorf("wire: injected write failure")
	}
	return c.Conn.WriteFrameBuffered(f)
}

func (c *flakyConn) Flush() error {
	if c.broken() {
		return fmt.Errorf("wire: injected write failure")
	}
	return c.Conn.Flush()
}

// flakyTransport hands out one half-closed connection (the first dial)
// and clean ones after.
type flakyTransport struct {
	Transport
	mu        sync.Mutex
	handedOut bool
	failAfter int
}

func (t *flakyTransport) Dial(ctx context.Context, addr string) (Conn, error) {
	c, err := t.Transport.Dial(ctx, addr)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.handedOut {
		t.handedOut = true
		return &flakyConn{Conn: c, failAfter: t.failAfter}, nil
	}
	return c, nil
}

// TestCoordWriteFailureRedials: when the coordinator's writes start
// failing on an attached connection while reads still work, the send
// error must be treated as a connection break — detach, redial, replay
// — instead of being dropped. The old code ignored broadcast and
// heartbeat send errors, so the run hung until heartbeat loss killed
// the worker.
func TestCoordWriteFailureRedials(t *testing.T) {
	flat, inputs := distDesign(t, 2, 2)
	m := distMachine(t, "hypercube:1")
	sc, err := sched.ETF{}.Schedule(flat.Graph, m)
	if err != nil {
		t.Fatal(err)
	}
	single, err := (&exec.Runner{Inputs: inputs}).Run(sc, flat)
	if err != nil {
		t.Fatal(err)
	}

	inner := Inproc()
	addrs, stop := startWorkers(t, inner, 1)
	defer stop()
	// The first dialed connection survives the handshake (write 1) and
	// the start bundle (write 2), then every write fails.
	co := &Coordinator{
		Transport: &flakyTransport{Transport: inner, failAfter: 2},
		Addrs:     addrs,
		Runner:    &exec.Runner{Inputs: inputs},
		// A tight heartbeat makes the coordinator hit the broken writes
		// quickly; the long peer timeout proves completion came from the
		// redial path, not from declaring the worker dead.
		HeartbeatEvery: 20 * time.Millisecond,
		PeerTimeout:    60 * time.Second,
		Logf:           t.Logf,
	}
	done := make(chan struct{})
	var dist *exec.Result
	var runErr error
	go func() {
		defer close(done)
		dist, runErr = co.Run(context.Background(), sc, flat)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("run hung on a half-closed connection")
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	if !reflect.DeepEqual(dist.Outputs, single.Outputs) {
		t.Errorf("outputs diverged:\n dist   %v\n single %v", dist.Outputs, single.Outputs)
	}
	reconnects := 0
	for _, e := range dist.Trace.Events {
		if e.Kind == trace.PeerConnected && e.Note == "reconnect" {
			reconnects++
		}
	}
	if reconnects == 0 {
		t.Error("trace records no reconnect; the write failure was not treated as a connection break")
	}
}

// TestCalibrateProbeTimeout: a worker that answers the handshake but
// swallows pings must fail calibration within the peer timeout, not
// block forever on a pong that never comes.
func TestCalibrateProbeTimeout(t *testing.T) {
	tr := Inproc()
	ln, err := tr.Listen("w0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		f, err := c.ReadFrame()
		if err != nil || f.Type != THello {
			c.Close()
			return
		}
		c.WriteFrame(Frame{Type: TWelcome, Payload: encJSON(Welcome{Proto: ProtoVersion})})
		for { // read pings, never pong
			if _, err := c.ReadFrame(); err != nil {
				return
			}
		}
	}()
	co := &Coordinator{Transport: tr, Addrs: []string{"w0"},
		PeerTimeout: 200 * time.Millisecond, Logf: t.Logf}
	errCh := make(chan error, 1)
	go func() {
		_, err := co.Calibrate(context.Background(), 2)
		errCh <- err
	}()
	select {
	case err := <-errCh:
		if err == nil || !strings.Contains(err.Error(), "timed out") {
			t.Fatalf("got %v, want a probe timeout error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("calibration spun forever on a lost pong")
	}
}
