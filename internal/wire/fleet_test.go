package wire

import (
	"context"
	"reflect"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/sched"
)

// startFleet opens a fleet on the transport with the given seed
// members and registers cleanup.
func startFleet(t *testing.T, tr Transport, seed []string) *Fleet {
	t.Helper()
	f := &Fleet{Transport: tr, Control: "fleet-control", Seed: seed, Logf: t.Logf,
		HeartbeatEvery: 50 * time.Millisecond, PeerTimeout: 2 * time.Second, Mesh: true}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f
}

func TestFleetMembership(t *testing.T) {
	tr := Inproc()
	addrs, stop := startWorkers(t, tr, 3)
	defer stop()
	f := startFleet(t, tr, nil)
	ctx := context.Background()

	// Workers enter by announcing, exactly as `banger worker -join`.
	for _, a := range addrs {
		if err := Announce(ctx, tr, f.Addr(), a); err != nil {
			t.Fatalf("announce %s: %v", a, err)
		}
	}
	// Announcing again is an idempotent no-op.
	if err := Announce(ctx, tr, f.Addr(), addrs[0]); err != nil {
		t.Fatalf("re-announce: %v", err)
	}
	if got := f.Members(); !reflect.DeepEqual(got, []string{"worker-0", "worker-1", "worker-2"}) {
		t.Fatalf("members = %v", got)
	}

	// Drain removes a member; the floor protects the last one.
	if err := Drain(ctx, tr, f.Addr(), -1, addrs[1]); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := Drain(ctx, tr, f.Addr(), -1, addrs[1]); err == nil {
		t.Fatal("draining a non-member should be rejected")
	}
	if err := Drain(ctx, tr, f.Addr(), -1, addrs[0]); err != nil {
		t.Fatalf("drain to floor: %v", err)
	}
	if err := Drain(ctx, tr, f.Addr(), -1, addrs[2]); err == nil {
		t.Fatal("draining the last member should be rejected")
	}
	if n := f.Size(); n != 1 {
		t.Fatalf("size = %d, want 1", n)
	}
}

// TestFleetRunBackToBack is the reuse contract: many runs over one
// fleet, every one byte-identical to the single-process runner, with
// the control listener handed back and forth each time.
func TestFleetRunBackToBack(t *testing.T) {
	tr := Inproc()
	addrs, stop := startWorkers(t, tr, 2)
	defer stop()
	f := startFleet(t, tr, addrs)
	ctx := context.Background()

	flat, inputs := distDesign(t, 4, 3)
	m := distMachine(t, "hypercube:2")
	sc, err := sched.ETF{}.Schedule(flat.Graph, m)
	if err != nil {
		t.Fatal(err)
	}
	want, err := (&exec.Runner{Inputs: inputs}).Run(sc, flat)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		res, err := f.Run(ctx, &exec.Runner{Inputs: inputs}, sc, flat)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if !reflect.DeepEqual(res.Outputs, want.Outputs) {
			t.Fatalf("run %d outputs = %v, want %v", i, res.Outputs, want.Outputs)
		}
		if !reflect.DeepEqual(res.Printed, want.Printed) {
			t.Fatalf("run %d printed = %v, want %v", i, res.Printed, want.Printed)
		}
		// The control listener must be back in fleet hands: an
		// announce between runs is served.
		if err := Announce(ctx, tr, f.Addr(), addrs[0]); err != nil {
			t.Fatalf("between-run announce after run %d: %v", i, err)
		}
	}
}

// TestFleetDropsDeadWorker: a member whose daemon died is dropped by
// the pre-run probe instead of failing the all-or-nothing connect, and
// a restarted daemon re-enters by announcing.
func TestFleetDropsDeadWorker(t *testing.T) {
	tr := Inproc()
	addrs, stop := startWorkers(t, tr, 1)
	defer stop()

	// The victim lives on its own cancellable context.
	vctx, vcancel := context.WithCancel(context.Background())
	defer vcancel()
	victimUp := make(chan struct{})
	victimDown := make(chan struct{})
	go func() {
		defer close(victimDown)
		ServeWorker(vctx, tr, "victim", WorkerOptions{Logf: t.Logf}, func(string) { close(victimUp) })
	}()
	<-victimUp

	f := startFleet(t, tr, append(addrs, "victim"))
	ctx := context.Background()

	flat, inputs := distDesign(t, 3, 3)
	m := distMachine(t, "hypercube:2")
	sc, err := sched.ETF{}.Schedule(flat.Graph, m)
	if err != nil {
		t.Fatal(err)
	}
	want, err := (&exec.Runner{Inputs: inputs}).Run(sc, flat)
	if err != nil {
		t.Fatal(err)
	}

	// Run once on both, kill the victim, run again: the probe must
	// shrink the fleet to the survivor and the run must still succeed.
	if _, err := f.Run(ctx, &exec.Runner{Inputs: inputs}, sc, flat); err != nil {
		t.Fatalf("run on full fleet: %v", err)
	}
	vcancel()
	<-victimDown
	res, err := f.Run(ctx, &exec.Runner{Inputs: inputs}, sc, flat)
	if err != nil {
		t.Fatalf("run after worker death: %v", err)
	}
	if !reflect.DeepEqual(res.Outputs, want.Outputs) {
		t.Fatalf("outputs after worker death = %v, want %v", res.Outputs, want.Outputs)
	}
	if n := f.Size(); n != 1 {
		t.Fatalf("size after probe = %d, want 1", n)
	}

	// A restarted daemon announces its way back in.
	rctx, rcancel := context.WithCancel(context.Background())
	defer rcancel()
	revivedUp := make(chan struct{})
	go ServeWorker(rctx, tr, "victim", WorkerOptions{Logf: t.Logf}, func(string) { close(revivedUp) })
	<-revivedUp
	if err := Announce(ctx, tr, f.Addr(), "victim"); err != nil {
		t.Fatalf("rejoin announce: %v", err)
	}
	if n := f.Size(); n != 2 {
		t.Fatalf("size after rejoin = %d, want 2", n)
	}
	if _, err := f.Run(ctx, &exec.Runner{Inputs: inputs}, sc, flat); err != nil {
		t.Fatalf("run after rejoin: %v", err)
	}
}

// TestRepeatedRunTeardownNoLeak is the regression test for session and
// coordinator teardown: back-to-back runs on the same long-lived fleet
// must not accumulate goroutines or mesh links. Every coordinator run
// spins up per-peer readers, redialers, a control listener, mesh dial
// loops on the workers and an exec session per side; after each run
// all of it must be torn down even though the worker daemons live on.
func TestRepeatedRunTeardownNoLeak(t *testing.T) {
	tr := Inproc()
	addrs, stop := startWorkers(t, tr, 2)
	defer stop()
	f := startFleet(t, tr, addrs)
	ctx := context.Background()

	flat, inputs := distDesign(t, 3, 3)
	m := distMachine(t, "hypercube:2")
	sc, err := sched.ETF{}.Schedule(flat.Graph, m)
	if err != nil {
		t.Fatal(err)
	}

	run := func(i int) {
		t.Helper()
		if _, err := f.Run(ctx, &exec.Runner{Inputs: inputs}, sc, flat); err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
	}

	// Warm up: first runs populate caches (compiled programs, encoded
	// schedules) and may leave short-lived teardown goroutines; let
	// those settle before taking the baseline.
	for i := 0; i < 2; i++ {
		run(i)
	}
	base := settleGoroutines(t, runtime.NumGoroutine(), 2*time.Second)

	const cycles = 10
	for i := 0; i < cycles; i++ {
		run(i)
	}

	// Teardown is asynchronous on the worker side (TBye is processed
	// after the coordinator returns), so give the counts a moment to
	// settle before declaring a leak.
	const slack = 3
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base+slack && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base+slack {
		var sb strings.Builder
		pprof.Lookup("goroutine").WriteTo(&sb, 1)
		t.Fatalf("goroutines grew from %d to %d over %d run/teardown cycles; dump:\n%s",
			base, n, cycles, sb.String())
	}
}

// settleGoroutines waits for the goroutine count to stop falling and
// returns the settled floor.
func settleGoroutines(t *testing.T, start int, patience time.Duration) int {
	t.Helper()
	low := start
	deadline := time.Now().Add(patience)
	for time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
		if n := runtime.NumGoroutine(); n < low {
			low = n
			deadline = time.Now().Add(patience)
		}
	}
	return low
}

// TestRepeatedLocalSessionNoLeak covers the single-process half of the
// teardown contract: a serving layer runs many in-process sessions
// back to back against one shared stats block, and each must unwind
// its workers, watchdogs and controller completely.
func TestRepeatedLocalSessionNoLeak(t *testing.T) {
	flat, inputs := distDesign(t, 3, 3)
	m := distMachine(t, "hypercube:2")
	sc, err := sched.ETF{}.Schedule(flat.Graph, m)
	if err != nil {
		t.Fatal(err)
	}
	stats := &exec.Stats{}
	run := func(i int) {
		t.Helper()
		if _, err := (&exec.Runner{Inputs: inputs, Stats: stats}).Run(sc, flat); err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
	}
	for i := 0; i < 2; i++ {
		run(i)
	}
	base := settleGoroutines(t, runtime.NumGoroutine(), time.Second)
	const cycles = 20
	for i := 0; i < cycles; i++ {
		run(i)
	}
	const slack = 3
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base+slack && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base+slack {
		var sb strings.Builder
		pprof.Lookup("goroutine").WriteTo(&sb, 1)
		t.Fatalf("goroutines grew from %d to %d over %d local sessions; dump:\n%s",
			base, n, cycles, sb.String())
	}
	if got := stats.Snapshot().TasksRun; got == 0 {
		t.Fatal("shared stats block recorded no tasks")
	}
}

// TestFleetConcurrentRuns: worker daemons multiplex sessions keyed by
// run ID, so the fleet admits many coordinators at once — the runs must
// genuinely overlap in flight, and every one must still succeed.
func TestFleetConcurrentRuns(t *testing.T) {
	tr := Inproc()
	addrs, stop := startWorkers(t, tr, 2)
	defer stop()
	f := startFleet(t, tr, addrs)
	ctx := context.Background()

	flat, inputs := distDesign(t, 3, 3)
	m := distMachine(t, "hypercube:2")
	sc, err := sched.ETF{}.Schedule(flat.Graph, m)
	if err != nil {
		t.Fatal(err)
	}
	// A wall-clock hold keeps each run open long enough for the launches
	// to overlap; avoid=-1 excludes nobody.
	plan, _ := holdOpen(t, sc, 2, 400000, -1)
	const runs = 4
	errs := make(chan error, runs)
	for i := 0; i < runs; i++ {
		go func() {
			_, err := f.Run(ctx, &exec.Runner{Inputs: inputs, Faults: plan, WatchdogMin: 10 * time.Second}, sc, flat)
			errs <- err
		}()
	}
	// Watch concurrency while the runs are in flight.
	peak := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if n := f.ActiveRuns(); n > peak {
				peak = n
			}
			select {
			case <-time.After(5 * time.Millisecond):
			case <-ctx.Done():
				return
			}
			if peak == runs {
				return
			}
		}
	}()
	for i := 0; i < runs; i++ {
		select {
		case err := <-errs:
			if err != nil {
				t.Fatalf("concurrent run: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("concurrent fleet runs deadlocked")
		}
	}
	<-done
	if peak < 2 {
		t.Fatalf("runs never overlapped: peak concurrency %d, want >= 2", peak)
	}
}

// TestFleetMaxRunsCaps: the MaxRuns semaphore bounds concurrently
// executing fleet runs without losing any.
func TestFleetMaxRunsCaps(t *testing.T) {
	tr := Inproc()
	addrs, stop := startWorkers(t, tr, 2)
	defer stop()
	f := &Fleet{Transport: tr, Control: "fleet-control-capped", Seed: addrs, Logf: t.Logf,
		HeartbeatEvery: 50 * time.Millisecond, PeerTimeout: 2 * time.Second, Mesh: true,
		MaxRuns: 1}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	ctx := context.Background()

	flat, inputs := distDesign(t, 3, 3)
	m := distMachine(t, "hypercube:2")
	sc, err := sched.ETF{}.Schedule(flat.Graph, m)
	if err != nil {
		t.Fatal(err)
	}
	plan, _ := holdOpen(t, sc, 2, 150000, -1)
	const runs = 3
	errs := make(chan error, runs)
	stopWatch := make(chan struct{})
	var over atomic.Bool
	go func() {
		for {
			if f.ActiveRuns() > 1 {
				over.Store(true)
			}
			select {
			case <-stopWatch:
				return
			case <-time.After(2 * time.Millisecond):
			}
		}
	}()
	for i := 0; i < runs; i++ {
		go func() {
			_, err := f.Run(ctx, &exec.Runner{Inputs: inputs, Faults: plan, WatchdogMin: 10 * time.Second}, sc, flat)
			errs <- err
		}()
	}
	for i := 0; i < runs; i++ {
		select {
		case err := <-errs:
			if err != nil {
				t.Fatalf("capped run: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("capped fleet runs deadlocked")
		}
	}
	close(stopWatch)
	if over.Load() {
		t.Fatal("MaxRuns=1 fleet had more than one run in flight")
	}
}

// TestFleetPlaceLeastLoaded: placement picks the members hosting the
// fewest runs, breaking ties by address, and returns them sorted so
// worker indices stay deterministic.
func TestFleetPlaceLeastLoaded(t *testing.T) {
	f := &Fleet{Transport: Inproc(), Control: "fleet-control-place"}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	live := []string{"a", "b", "c", "d"}
	f.mu.Lock()
	f.load = map[string]int{"a": 2, "b": 0, "c": 1, "d": 0}
	f.mu.Unlock()
	if got := f.place(live, 2); !reflect.DeepEqual(got, []string{"b", "d"}) {
		t.Fatalf("place picked %v, want the idle members [b d]", got)
	}
	if got := f.place(live, 3); !reflect.DeepEqual(got, []string{"b", "c", "d"}) {
		t.Fatalf("place picked %v, want [b c d]", got)
	}
	// More processors than members: everyone plays.
	if got := f.place(live, 8); !reflect.DeepEqual(got, []string{"a", "b", "c", "d"}) {
		t.Fatalf("place picked %v, want all members", got)
	}
}
