package wire

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/exec"
	"repro/internal/machine"
	"repro/internal/pits"
)

func TestValueRoundTrip(t *testing.T) {
	values := []pits.Value{
		pits.Num(0),
		pits.Num(-3.25),
		pits.Num(math.Inf(1)),
		pits.Num(math.Inf(-1)),
		pits.Num(math.MaxFloat64),
		pits.Num(math.SmallestNonzeroFloat64),
		pits.Vec{},
		pits.Vec{1.5, math.Inf(1), -0.0},
		pits.BoolV(true),
		pits.BoolV(false),
		pits.StrV(""),
		pits.StrV("hello, wire ✓"),
	}
	for _, v := range values {
		b, err := AppendValue(nil, v)
		if err != nil {
			t.Fatalf("encode %v: %v", v, err)
		}
		got, rest, err := DecodeValue(b)
		if err != nil {
			t.Fatalf("decode %v: %v", v, err)
		}
		if len(rest) != 0 {
			t.Errorf("decode %v left %d trailing bytes", v, len(rest))
		}
		if !reflect.DeepEqual(got, v) {
			t.Errorf("round trip: got %#v want %#v", got, v)
		}
	}

	// NaN != NaN, so it needs its own check: the bit pattern survives.
	b, err := AppendValue(nil, pits.Num(math.NaN()))
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeValue(b)
	if err != nil {
		t.Fatal(err)
	}
	if n, ok := got.(pits.Num); !ok || !math.IsNaN(float64(n)) {
		t.Errorf("NaN did not survive the wire: %#v", got)
	}
}

func TestEnvRoundTripDeterministic(t *testing.T) {
	env := pits.Env{
		"x":   pits.Num(3),
		"vec": pits.Vec{1, 2, 3},
		"ok":  pits.BoolV(true),
		"s":   pits.StrV("text"),
	}
	b1, err := EncodeEnv(env)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := EncodeEnv(env)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b1, b2) {
		t.Error("identical environments encoded to different bytes")
	}
	got, err := DecodeEnv(b1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, env) {
		t.Errorf("round trip: got %#v want %#v", got, env)
	}
}

func TestMsgRoundTripAndDest(t *testing.T) {
	m := exec.RemoteMsg{
		From: "producer", To: "consumer", Var: "u",
		FromPE: 3, ToPE: 5, Seq: 77, Epoch: 2,
		At: machine.Time(1234), Sum: 0xdeadbeef,
		Val: pits.Vec{1, math.Inf(-1), 3},
	}
	b, err := EncodeMsg(m)
	if err != nil {
		t.Fatal(err)
	}
	dest, err := MsgDest(b)
	if err != nil {
		t.Fatal(err)
	}
	if dest != m.ToPE {
		t.Errorf("MsgDest = %d, want %d", dest, m.ToPE)
	}
	got, err := DecodeMsg(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("round trip:\n got %#v\nwant %#v", got, m)
	}

	if _, err := DecodeMsg(b[:20]); err == nil {
		t.Error("truncated message decoded without error")
	}
	if _, err := DecodeMsg(append(append([]byte(nil), b...), 0)); err == nil {
		t.Error("trailing bytes decoded without error")
	}
}

func TestRunOptsRoundTrip(t *testing.T) {
	plan, err := exec.ParseFaults("crash:1@2,drop:a->b:u")
	if err != nil {
		t.Fatal(err)
	}
	r := &exec.Runner{VirtualTime: true, Retry: true, RetryBase: 1000, RetryCap: 8000,
		Grace: 2.5, WatchdogMin: 500, NoWatchdog: false, StallTimeout: 90000,
		MaxSteps: 1 << 20, Faults: plan}
	got, err := OptsFor(r).Runner()
	if err != nil {
		t.Fatal(err)
	}
	if got.VirtualTime != r.VirtualTime || got.Retry != r.Retry ||
		got.RetryBase != r.RetryBase || got.RetryCap != r.RetryCap ||
		got.Grace != r.Grace || got.WatchdogMin != r.WatchdogMin ||
		got.StallTimeout != r.StallTimeout || got.MaxSteps != r.MaxSteps {
		t.Errorf("runner knobs did not survive the wire:\n got %+v\nwant %+v", got, r)
	}
	if got.Faults == nil || got.Faults.String() != plan.String() {
		t.Errorf("fault plan did not survive: got %v want %v", got.Faults, plan)
	}
}
