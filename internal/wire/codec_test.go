package wire

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/exec"
	"repro/internal/machine"
	"repro/internal/pits"
	"repro/internal/sched"
	"repro/internal/trace"
)

func TestValueRoundTrip(t *testing.T) {
	values := []pits.Value{
		pits.Num(0),
		pits.Num(-3.25),
		pits.Num(math.Inf(1)),
		pits.Num(math.Inf(-1)),
		pits.Num(math.MaxFloat64),
		pits.Num(math.SmallestNonzeroFloat64),
		pits.Vec{},
		pits.Vec{1.5, math.Inf(1), -0.0},
		pits.BoolV(true),
		pits.BoolV(false),
		pits.StrV(""),
		pits.StrV("hello, wire ✓"),
	}
	for _, v := range values {
		b, err := AppendValue(nil, v)
		if err != nil {
			t.Fatalf("encode %v: %v", v, err)
		}
		got, rest, err := DecodeValue(b)
		if err != nil {
			t.Fatalf("decode %v: %v", v, err)
		}
		if len(rest) != 0 {
			t.Errorf("decode %v left %d trailing bytes", v, len(rest))
		}
		if !reflect.DeepEqual(got, v) {
			t.Errorf("round trip: got %#v want %#v", got, v)
		}
	}

	// NaN != NaN, so it needs its own check: the bit pattern survives.
	b, err := AppendValue(nil, pits.Num(math.NaN()))
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeValue(b)
	if err != nil {
		t.Fatal(err)
	}
	if n, ok := got.(pits.Num); !ok || !math.IsNaN(float64(n)) {
		t.Errorf("NaN did not survive the wire: %#v", got)
	}
}

func TestEnvRoundTripDeterministic(t *testing.T) {
	env := pits.Env{
		"x":   pits.Num(3),
		"vec": pits.Vec{1, 2, 3},
		"ok":  pits.BoolV(true),
		"s":   pits.StrV("text"),
	}
	b1, err := EncodeEnv(env)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := EncodeEnv(env)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b1, b2) {
		t.Error("identical environments encoded to different bytes")
	}
	got, err := DecodeEnv(b1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, env) {
		t.Errorf("round trip: got %#v want %#v", got, env)
	}
}

func TestMsgRoundTripAndDest(t *testing.T) {
	m := exec.RemoteMsg{
		From: "producer", To: "consumer", Var: "u",
		FromPE: 3, ToPE: 5, Seq: 77, Epoch: 2,
		At: machine.Time(1234), Sum: 0xdeadbeef,
		Val: pits.Vec{1, math.Inf(-1), 3},
	}
	b, err := EncodeMsg(m)
	if err != nil {
		t.Fatal(err)
	}
	dest, err := MsgDest(b)
	if err != nil {
		t.Fatal(err)
	}
	if dest != m.ToPE {
		t.Errorf("MsgDest = %d, want %d", dest, m.ToPE)
	}
	got, err := DecodeMsg(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("round trip:\n got %#v\nwant %#v", got, m)
	}

	if _, err := DecodeMsg(b[:20]); err == nil {
		t.Error("truncated message decoded without error")
	}
	if _, err := DecodeMsg(append(append([]byte(nil), b...), 0)); err == nil {
		t.Error("trailing bytes decoded without error")
	}
}

func TestScheduleRoundTrip(t *testing.T) {
	flat, _ := distDesign(t, 3, 3)
	m := distMachine(t, "hypercube:3")
	sc, err := sched.ETF{}.Schedule(flat.Graph, m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeSchedule(sc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSchedule(b)
	if err != nil {
		t.Fatal(err)
	}
	// The JSON form is canonical and deterministic; byte-equal marshals
	// mean the graph, machine, slots and messages all survived.
	wantJSON, err := sc.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := got.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Errorf("round trip changed the schedule:\n got %s\nwant %s", gotJSON, wantJSON)
	}

	if _, err := DecodeSchedule(b[:len(b)/2]); err == nil {
		t.Error("truncated schedule decoded without error")
	}
	if _, err := DecodeSchedule(append(append([]byte(nil), b...), 0)); err == nil {
		t.Error("trailing bytes decoded without error")
	}
	if _, err := DecodeSchedule([]byte{99}); err == nil {
		t.Error("unknown codec version decoded without error")
	}
}

func TestEventsRoundTrip(t *testing.T) {
	evs := []trace.Event{
		{Kind: trace.TaskStart, At: 10, Task: "t1", PE: 2},
		{Kind: trace.TaskEnd, At: 25, Task: "t1", PE: 2, Note: "ok"},
		{Kind: trace.MsgSend, At: 26, Task: "t1", PE: 2, Var: "x", Peer: 5, Seq: 7, Bytes: 64},
		{Kind: trace.MsgRecv, At: 31, Task: "t2", PE: 5, Var: "x", Peer: 2, Seq: 7, Dup: true, Bytes: -1},
		{Kind: trace.WireBytes, At: 31, PE: -1, Bytes: 1 << 40},
	}
	got, err := DecodeEvents(EncodeEvents(evs))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, evs) {
		t.Errorf("round trip:\n got %#v\nwant %#v", got, evs)
	}

	empty, err := DecodeEvents(EncodeEvents(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(empty) != 0 {
		t.Errorf("empty event list decoded to %d events", len(empty))
	}

	b := EncodeEvents(evs)
	if _, err := DecodeEvents(b[:len(b)-3]); err == nil {
		t.Error("truncated events decoded without error")
	}
}

func TestRunOptsRoundTrip(t *testing.T) {
	plan, err := exec.ParseFaults("crash:1@2,drop:a->b:u")
	if err != nil {
		t.Fatal(err)
	}
	r := &exec.Runner{VirtualTime: true, Retry: true, RetryBase: 1000, RetryCap: 8000,
		Grace: 2.5, WatchdogMin: 500, NoWatchdog: false, StallTimeout: 90000,
		MaxSteps: 1 << 20, Faults: plan}
	got, err := OptsFor(r).Runner()
	if err != nil {
		t.Fatal(err)
	}
	if got.VirtualTime != r.VirtualTime || got.Retry != r.Retry ||
		got.RetryBase != r.RetryBase || got.RetryCap != r.RetryCap ||
		got.Grace != r.Grace || got.WatchdogMin != r.WatchdogMin ||
		got.StallTimeout != r.StallTimeout || got.MaxSteps != r.MaxSteps {
		t.Errorf("runner knobs did not survive the wire:\n got %+v\nwant %+v", got, r)
	}
	if got.Faults == nil || got.Faults.String() != plan.String() {
		t.Errorf("fault plan did not survive: got %v want %v", got.Faults, plan)
	}
}
