package codegen

// runtimeSrc is the small dynamic-value runtime embedded into every
// generated program. It mirrors the semantics of the PITS interpreter
// (scalar/vector broadcasting, 1-based indexing, panics on domain
// errors) using only the standard library.
const runtimeSrc = `import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// val is a PITS runtime value: float64, []float64, bool or string.
type val = any

func panicVal(msg string) val { panic(msg) }

func asNum(v val) float64 {
	f, ok := v.(float64)
	if !ok {
		panic(fmt.Sprintf("expected a number, got %T", v))
	}
	return f
}

func asVec(v val) []float64 {
	x, ok := v.([]float64)
	if !ok {
		panic(fmt.Sprintf("expected a vector, got %T", v))
	}
	return x
}

func truth(v val) bool {
	b, ok := v.(bool)
	if !ok {
		panic(fmt.Sprintf("condition must be a boolean, got %T", v))
	}
	return b
}

func get(env map[string]val, name string) val {
	if v, ok := env[name]; ok {
		return v
	}
	switch name {
	case "pi":
		return math.Pi
	case "e":
		return math.E
	}
	panic("undefined variable " + strconv.Quote(name))
}

// store copies vectors on assignment so variables never alias.
func store(v val) val {
	if x, ok := v.([]float64); ok {
		return append([]float64(nil), x...)
	}
	return v
}

func index(base, idx val) val {
	v := asVec(base)
	i := int(asNum(idx))
	if float64(i) != asNum(idx) || i < 1 || i > len(v) {
		panic(fmt.Sprintf("index %v out of range 1..%d", idx, len(v)))
	}
	return v[i-1]
}

func setIndex(env map[string]val, name string, idx, x val) {
	v := asVec(get(env, name))
	i := int(asNum(idx))
	if float64(i) != asNum(idx) || i < 1 || i > len(v) {
		panic(fmt.Sprintf("index %v out of range 1..%d", idx, len(v)))
	}
	v[i-1] = asNum(x)
}

func broadcast(a, b val, f func(x, y float64) float64) val {
	switch x := a.(type) {
	case float64:
		switch y := b.(type) {
		case float64:
			return f(x, y)
		case []float64:
			out := make([]float64, len(y))
			for i := range y {
				out[i] = f(x, y[i])
			}
			return out
		}
	case []float64:
		switch y := b.(type) {
		case float64:
			out := make([]float64, len(x))
			for i := range x {
				out[i] = f(x[i], y)
			}
			return out
		case []float64:
			if len(x) != len(y) {
				panic(fmt.Sprintf("vector lengths %d and %d differ", len(x), len(y)))
			}
			out := make([]float64, len(x))
			for i := range x {
				out[i] = f(x[i], y[i])
			}
			return out
		}
	}
	panic(fmt.Sprintf("cannot combine %T and %T", a, b))
}

func add(a, b val) val { return broadcast(a, b, func(x, y float64) float64 { return x + y }) }
func sub(a, b val) val { return broadcast(a, b, func(x, y float64) float64 { return x - y }) }
func mul(a, b val) val { return broadcast(a, b, func(x, y float64) float64 { return x * y }) }

func div(a, b val) val {
	return broadcast(a, b, func(x, y float64) float64 {
		if y == 0 {
			panic("division by zero")
		}
		return x / y
	})
}

func modv(a, b val) val {
	return broadcast(a, b, func(x, y float64) float64 {
		if y == 0 {
			panic("modulo by zero")
		}
		return math.Mod(x, y)
	})
}

func powv(a, b val) val {
	return broadcast(a, b, func(x, y float64) float64 {
		r := math.Pow(x, y)
		if math.IsNaN(r) || math.IsInf(r, 0) {
			panic("power result not finite")
		}
		return r
	})
}

func neg(a val) val {
	switch x := a.(type) {
	case float64:
		return -x
	case []float64:
		out := make([]float64, len(x))
		for i := range x {
			out[i] = -x[i]
		}
		return out
	}
	panic(fmt.Sprintf("cannot negate %T", a))
}

func lt(a, b val) val { return asNum(a) < asNum(b) }
func le(a, b val) val { return asNum(a) <= asNum(b) }
func gt(a, b val) val { return asNum(a) > asNum(b) }
func ge(a, b val) val { return asNum(a) >= asNum(b) }

func eq(a, b val) val {
	switch x := a.(type) {
	case float64:
		return x == asNum(b)
	case bool:
		return x == truth(b)
	case string:
		y, ok := b.(string)
		if !ok {
			panic("cannot compare string with non-string")
		}
		return x == y
	case []float64:
		y := asVec(b)
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	panic(fmt.Sprintf("cannot compare %T", a))
}

func ne(a, b val) val { return !truth(eq(a, b)) }

var rngMu sync.Mutex
var rng = rand.New(rand.NewSource(1))

func call(fn string, args ...val) val {
	n1 := func() float64 { return asNum(args[0]) }
	switch fn {
	case "sqrt":
		return mustFinite(fn, math.Sqrt(n1()))
	case "abs":
		return math.Abs(n1())
	case "sin":
		return math.Sin(n1())
	case "cos":
		return math.Cos(n1())
	case "tan":
		return math.Tan(n1())
	case "asin":
		return mustFinite(fn, math.Asin(n1()))
	case "acos":
		return mustFinite(fn, math.Acos(n1()))
	case "atan":
		return math.Atan(n1())
	case "atan2":
		return math.Atan2(n1(), asNum(args[1]))
	case "exp":
		return mustFinite(fn, math.Exp(n1()))
	case "ln":
		return mustFinite(fn, math.Log(n1()))
	case "log10":
		return mustFinite(fn, math.Log10(n1()))
	case "floor":
		return math.Floor(n1())
	case "ceil":
		return math.Ceil(n1())
	case "round":
		return math.Round(n1())
	case "pow":
		return mustFinite(fn, math.Pow(n1(), asNum(args[1])))
	case "mod":
		if asNum(args[1]) == 0 {
			panic("mod by zero")
		}
		return math.Mod(n1(), asNum(args[1]))
	case "min", "max":
		xs := numArgs(args)
		best := xs[0]
		for _, x := range xs[1:] {
			if (fn == "min" && x < best) || (fn == "max" && x > best) {
				best = x
			}
		}
		return best
	case "len":
		return float64(len(asVec(args[0])))
	case "sum":
		s := 0.0
		for _, x := range asVec(args[0]) {
			s += x
		}
		return s
	case "mean":
		v := asVec(args[0])
		if len(v) == 0 {
			panic("mean of empty vector")
		}
		s := 0.0
		for _, x := range v {
			s += x
		}
		return s / float64(len(v))
	case "dot":
		u, w := asVec(args[0]), asVec(args[1])
		if len(u) != len(w) {
			panic("dot: lengths differ")
		}
		s := 0.0
		for i := range u {
			s += u[i] * w[i]
		}
		return s
	case "norm":
		s := 0.0
		for _, x := range asVec(args[0]) {
			s += x * x
		}
		return math.Sqrt(s)
	case "zeros":
		return make([]float64, int(n1()))
	case "ones":
		v := make([]float64, int(n1()))
		for i := range v {
			v[i] = 1
		}
		return v
	case "sort":
		out := append([]float64(nil), asVec(args[0])...)
		sort.Float64s(out)
		return out
	case "rand":
		rngMu.Lock()
		defer rngMu.Unlock()
		return rng.Float64()
	}
	panic("unknown function " + strconv.Quote(fn))
}

func mustFinite(fn string, x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		panic(fn + " result not finite")
	}
	return x
}

func numArgs(args []val) []float64 {
	if len(args) == 1 {
		if v, ok := args[0].([]float64); ok {
			if len(v) == 0 {
				panic("empty vector")
			}
			return v
		}
	}
	out := make([]float64, len(args))
	for i, a := range args {
		out[i] = asNum(a)
	}
	return out
}

var emitMu sync.Mutex

func emit(args ...val) {
	emitMu.Lock()
	defer emitMu.Unlock()
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = show(a)
	}
	fmt.Println(strings.Join(parts, " "))
}

func show(v val) string {
	switch x := v.(type) {
	case float64:
		if x == math.Trunc(x) && math.Abs(x) < 1e15 {
			return strconv.FormatInt(int64(x), 10)
		}
		return strconv.FormatFloat(x, 'g', 10, 64)
	case []float64:
		parts := make([]string, len(x))
		for i, f := range x {
			parts[i] = show(f)
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case bool:
		return strconv.FormatBool(x)
	case string:
		return x
	}
	return fmt.Sprintf("%v", v)
}

`
