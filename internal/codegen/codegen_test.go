package codegen

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/pits"
	"repro/internal/project"
	"repro/internal/sched"
)

// buildAndRun compiles the generated source in a throwaway module and
// runs it, returning stdout.
func buildAndRun(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module generated\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(dir, "prog")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Dir = dir
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build failed: %v\n%s\n--- source ---\n%s", err, out, numbered(src))
	}
	run := exec.Command(bin)
	out, err := run.CombinedOutput()
	if err != nil {
		t.Fatalf("generated program failed: %v\n%s", err, out)
	}
	return string(out)
}

func numbered(src string) string {
	lines := strings.Split(src, "\n")
	var b strings.Builder
	for i, l := range lines {
		b.WriteString(strings.TrimRight(strings.Repeat(" ", 4-len(itoa(i+1)))+itoa(i+1)+" "+l, " ") + "\n")
	}
	return b.String()
}

func itoa(i int) string {
	var out []byte
	if i == 0 {
		return "0"
	}
	for i > 0 {
		out = append([]byte{byte('0' + i%10)}, out...)
		i /= 10
	}
	return string(out)
}

func TestGeneratedLUProgramSolvesSystem(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a program with the go toolchain")
	}
	p, err := project.LU3x3()
	if err != nil {
		t.Fatal(err)
	}
	flat, err := p.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []sched.Scheduler{sched.Serial{}, sched.ETF{}, sched.DSH{}} {
		sc, err := s.Schedule(flat.Graph, p.Machine)
		if err != nil {
			t.Fatal(err)
		}
		src, err := Generate(sc, flat, p.Inputs)
		if err != nil {
			t.Fatal(err)
		}
		out := buildAndRun(t, src)
		if !strings.Contains(out, "x = [1, 2, 3]") {
			t.Errorf("%s: generated program output:\n%s", s.Name(), out)
		}
	}
}

func TestGeneratedProgramControlFlowAndBuiltins(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a program with the go toolchain")
	}
	g := graph.New("cf")
	n := g.MustAddTask("t", "", 10)
	n.Routine = `s = 0
for i = 1 to 10 do
  s = s + i
end
k = 0
while k < 3 do
  k = k + 1
end
v = [3, 1, 2]
v2 = sort(v)
flag = false
if s == 55 and k == 3 then
  flag = true
end
r = 0
repeat 4 do
  r = r + sqrt(4)
end
combo = min(v) + max(v2) + dot(v, v2) - norm([3, 4])
print "s", s
print "combo", combo
out = s + k + r`
	g.MustAddStorage("OUT", "out")
	g.MustConnect("t", "OUT", "out", 1)
	flat, err := g.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	topo, _ := machine.Full(1)
	m, _ := machine.New("m", topo, machine.DefaultParams())
	sc, err := sched.Serial{}.Schedule(flat.Graph, m)
	if err != nil {
		t.Fatal(err)
	}
	src, err := Generate(sc, flat, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := buildAndRun(t, src)
	for _, want := range []string{"s 55", "combo", "out = 66"} { // 55 + 3 + 8
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestGeneratedProgramMatchesInterpreter(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a program with the go toolchain")
	}
	// The stats pipeline has cross-PE messages on a mesh machine; the
	// generated binary must agree with the in-process runner's math.
	p, err := project.StatsPipeline()
	if err != nil {
		t.Fatal(err)
	}
	flat, err := p.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	sc, err := sched.ETF{}.Schedule(flat.Graph, p.Machine)
	if err != nil {
		t.Fatal(err)
	}
	src, err := Generate(sc, flat, p.Inputs)
	if err != nil {
		t.Fatal(err)
	}
	out := buildAndRun(t, src)
	if !strings.Contains(out, "best = ") || !strings.Contains(out, "spread = ") {
		t.Errorf("outputs missing:\n%s", out)
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(nil, nil, nil); err == nil {
		t.Error("nil schedule accepted")
	}
	g := graph.New("bad")
	n := g.MustAddTask("t", "", 1)
	n.Routine = "x = "
	topo, _ := machine.Full(1)
	m, _ := machine.New("m", topo, machine.DefaultParams())
	flat, err := g.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	sc, err := sched.Serial{}.Schedule(flat.Graph, m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(sc, flat, nil); err == nil {
		t.Error("unparsable routine accepted")
	}
	if _, err := Generate(sc, flat, pits.Env{"bad": unserialisable{}}); err == nil {
		t.Error("unserialisable input accepted")
	}
}

type unserialisable struct{}

func (unserialisable) TypeName() string { return "mystery" }
func (unserialisable) String() string   { return "?" }

func TestGeneratedSourceShape(t *testing.T) {
	p, err := project.LU3x3()
	if err != nil {
		t.Fatal(err)
	}
	flat, err := p.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	sc, err := sched.ETF{}.Schedule(flat.Graph, p.Machine)
	if err != nil {
		t.Fatal(err)
	}
	src, err := Generate(sc, flat, p.Inputs)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Code generated by banger codegen", "package main",
		"go func() { // PE", "wg.Wait()", "task0(", "inputs :=",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("source missing %q", want)
		}
	}
	// Cross-PE arcs become channels.
	if sc.UsedPEs() > 1 && !strings.Contains(src, "make(chan val, 1)") {
		t.Error("no channels generated for a multi-PE schedule")
	}
}

func TestGeneratedProgramWithFormulas(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a program with the go toolchain")
	}
	g := graph.New("formulas")
	n := g.MustAddTask("t", "", 10)
	n.Routine = `formula square(x) = x * x
formula hyp(a, b) = sqrt(square(a) + square(b))
c = hyp(3, 4)
out = square(c) + hyp(5, 12)`
	g.MustAddStorage("OUT", "out")
	g.MustConnect("t", "OUT", "out", 1)
	flat, err := g.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	topo, _ := machine.Full(1)
	m, _ := machine.New("m", topo, machine.DefaultParams())
	sc, err := sched.Serial{}.Schedule(flat.Graph, m)
	if err != nil {
		t.Fatal(err)
	}
	src, err := Generate(sc, flat, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "fml_square :=") || !strings.Contains(src, "fml_hyp(") {
		t.Fatalf("formulas not compiled to closures:\n%s", src)
	}
	out := buildAndRun(t, src)
	if !strings.Contains(out, "out = 38") { // 25 + 13
		t.Errorf("output:\n%s", out)
	}
}

// The generated heat program must reproduce the sequential diffusion
// reference exactly — PITS semantics survive compilation to Go.
func TestGeneratedHeatMatchesReference(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a program with the go toolchain")
	}
	p, err := project.Heat()
	if err != nil {
		t.Fatal(err)
	}
	flat, err := p.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	sc, err := sched.MH{}.Schedule(flat.Graph, p.Machine)
	if err != nil {
		t.Fatal(err)
	}
	src, err := Generate(sc, flat, p.Inputs)
	if err != nil {
		t.Fatal(err)
	}
	out := buildAndRun(t, src)
	want := project.HeatReference(4, 3, p.Inputs)
	// Spot-check the hottest interior cell printed by the binary: the
	// final segments appear as "seg<k>_2 = [...]" lines.
	if !strings.Contains(out, "seg1_2 = [") {
		t.Fatalf("output missing segment lines:\n%s", out)
	}
	// The middle of the rod should still be at 100 after 3 steps with
	// this spike initial condition.
	if want[15] != 100 {
		t.Fatalf("reference sanity: want[15] = %v", want[15])
	}
	if !strings.Contains(out, "100, 100, 100") {
		t.Errorf("generated program output lacks the hot plateau:\n%s", out)
	}
}
