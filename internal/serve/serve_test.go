package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/pits"
	"repro/internal/project"
	"repro/internal/wire"
)

// testProject builds a small diamond project. The work and words
// arguments perturb one execution and one communication weight (same
// shape, different schedule); the input value varies the data without
// changing the fingerprint.
func testProject(t testing.TB, work, words int64, input float64) *project.Project {
	t.Helper()
	g := graph.New("diamond")
	g.MustAddStorage("IN", "x")
	a := g.MustAddTask("a", "a", work)
	a.Routine = "u = x + 1"
	b := g.MustAddTask("b", "b", 10)
	b.Routine = "v = u * 2"
	c := g.MustAddTask("c", "c", 10)
	c.Routine = "w = u + 3"
	d := g.MustAddTask("d", "d", 10)
	d.Routine = "out = v + w\nprint \"got \", out"
	g.MustConnect("IN", "a", "x", 1)
	g.MustConnect("a", "b", "u", words)
	g.MustConnect("a", "c", "u", 1)
	g.MustConnect("b", "d", "v", 1)
	g.MustConnect("c", "d", "w", 1)
	g.MustAddStorage("OUT", "out")
	g.MustConnect("d", "OUT", "out", 1)

	topo, err := machine.ParseTopology("hypercube:2")
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New("hypercube:2", topo,
		machine.Params{ProcSpeed: 1, TaskStartup: 1, MsgStartup: 5, WordTime: 1})
	if err != nil {
		t.Fatal(err)
	}
	return &project.Project{Name: "diamond", Design: g, Machine: m,
		Inputs: pits.Env{"x": pits.Num(input)}}
}

// postRun submits a project and decodes the response.
func postRun(t testing.TB, url string, p *project.Project, query string, header map[string]string) (*RunResponse, *http.Response) {
	t.Helper()
	body, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/run"+query, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, resp
	}
	var rr RunResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return &rr, resp
}

func scrapeStats(t testing.TB, url string) StatsResponse {
	t.Helper()
	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestServeScheduleMode: ?mode=schedule maps the design and reports
// the prediction without executing — and shares the schedule cache
// with run mode, so a prediction warms the cache for the run.
func TestServeScheduleMode(t *testing.T) {
	s := New(Options{DefaultAlg: "etf"})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rr, resp := postRun(t, ts.URL, testProject(t, 10, 1, 3), "?mode=schedule", nil)
	if rr == nil {
		t.Fatalf("schedule-mode submission rejected: %d", resp.StatusCode)
	}
	if rr.Cache != "miss" {
		t.Fatalf("first prediction cache = %q, want miss", rr.Cache)
	}
	if rr.MakespanUS <= 0 || rr.PEs <= 0 || rr.Speedup <= 0 {
		t.Fatalf("prediction fields = %+v", rr)
	}
	if len(rr.Outputs) != 0 || len(rr.Printed) != 0 {
		t.Fatalf("schedule mode executed: outputs=%v printed=%v", rr.Outputs, rr.Printed)
	}

	// The prediction warmed the cache; a real run of the same shape
	// hits, executes, and agrees on the makespan's schedule.
	rr2, _ := postRun(t, ts.URL, testProject(t, 10, 1, 3), "", nil)
	if rr2.Cache != "hit" {
		t.Fatalf("run after prediction cache = %q, want hit", rr2.Cache)
	}
	if got := rr2.Outputs["out"]; got != "15" {
		t.Fatalf("out = %q, want 15", got)
	}

	// Stats counted both, and nothing executed for the prediction.
	st := scrapeStats(t, ts.URL)
	if st.Runs.Total != 2 || st.Runs.Failed != 0 {
		t.Fatalf("runs = %+v", st.Runs)
	}

	if _, resp := postRun(t, ts.URL, testProject(t, 10, 1, 3), "?mode=bogus", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus mode status = %d, want 400", resp.StatusCode)
	}
}

func TestServeRunAndCache(t *testing.T) {
	s := New(Options{DefaultAlg: "etf"})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// First submission: a miss that pays scheduling.
	rr1, resp := postRun(t, ts.URL, testProject(t, 10, 1, 3), "", nil)
	if rr1 == nil {
		t.Fatalf("run rejected: %d", resp.StatusCode)
	}
	if rr1.Cache != "miss" {
		t.Fatalf("first run cache = %q, want miss", rr1.Cache)
	}
	if got := rr1.Outputs["out"]; got != "15" {
		t.Fatalf("out = %q, want 15 ((3+1)*2 + (3+1)+3)", got)
	}
	if len(rr1.Printed) != 1 || !strings.Contains(rr1.Printed[0], "got") {
		t.Fatalf("printed = %v", rr1.Printed)
	}

	// Same shape, different input: a hit, byte-identical modulo data.
	rr2, _ := postRun(t, ts.URL, testProject(t, 10, 1, 5), "", nil)
	if rr2.Cache != "hit" {
		t.Fatalf("second run cache = %q, want hit", rr2.Cache)
	}
	if got := rr2.Outputs["out"]; got != "21" {
		t.Fatalf("out = %q, want 21 ((5+1)*2 + (5+1)+3)", got)
	}

	// Cache-hit and cache-miss runs of identical submissions must be
	// byte-identical.
	rr3, _ := postRun(t, ts.URL, testProject(t, 10, 1, 3), "", nil)
	if rr3.Cache != "hit" {
		t.Fatalf("third run cache = %q, want hit", rr3.Cache)
	}
	if !reflect.DeepEqual(rr3.Outputs, rr1.Outputs) || !reflect.DeepEqual(rr3.Printed, rr1.Printed) {
		t.Fatalf("cache-hit outputs %v/%v differ from cache-miss %v/%v",
			rr3.Outputs, rr3.Printed, rr1.Outputs, rr1.Printed)
	}

	st := scrapeStats(t, ts.URL)
	if st.Cache.Hits != 2 || st.Cache.Misses != 1 || st.Cache.Entries != 1 {
		t.Fatalf("cache stats = %+v, want 2 hits / 1 miss / 1 entry", st.Cache)
	}
	if st.Runs.Total != 3 || st.Runs.Failed != 0 {
		t.Fatalf("run stats = %+v", st.Runs)
	}
	if st.Exec.TasksRun != 12 { // 4 tasks × 3 runs accumulate in the shared block
		t.Fatalf("exec stats tasks = %d, want 12", st.Exec.TasksRun)
	}
}

// TestServeCacheWeightSensitivity pins the collision contract at the
// service level: same shape with different execution or communication
// weights must miss, as must a different algorithm.
func TestServeCacheWeightSensitivity(t *testing.T) {
	s := New(Options{DefaultAlg: "etf"})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i, p := range []*project.Project{
		testProject(t, 10, 1, 3), // baseline: miss
		testProject(t, 99, 1, 3), // different exec weight: miss
		testProject(t, 10, 9, 3), // different comm weight: miss
	} {
		rr, resp := postRun(t, ts.URL, p, "", nil)
		if rr == nil {
			t.Fatalf("run %d rejected: %d", i, resp.StatusCode)
		}
		if rr.Cache != "miss" {
			t.Fatalf("run %d cache = %q, want miss", i, rr.Cache)
		}
	}
	// Same design under another algorithm is another schedule.
	if rr, _ := postRun(t, ts.URL, testProject(t, 10, 1, 3), "?alg=mh", nil); rr.Cache != "miss" {
		t.Fatalf("alg=mh cache = %q, want miss", rr.Cache)
	}
	// And the baseline is still warm.
	if rr, _ := postRun(t, ts.URL, testProject(t, 10, 1, 3), "", nil); rr.Cache != "hit" {
		t.Fatalf("baseline re-run cache = %q, want hit", rr.Cache)
	}
	if st := scrapeStats(t, ts.URL); st.Cache.Misses != 4 || st.Cache.Hits != 1 {
		t.Fatalf("cache stats = %+v, want 4 misses / 1 hit", st.Cache)
	}
}

func TestServeCacheEviction(t *testing.T) {
	s := New(Options{DefaultAlg: "etf", CacheCap: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	shapes := []int64{10, 20, 30}
	for _, w := range shapes {
		postRun(t, ts.URL, testProject(t, w, 1, 3), "", nil)
	}
	// Three distinct shapes through a two-entry cache: the oldest
	// (work=10) must have been evicted and miss again; the newest two
	// must still hit.
	if rr, _ := postRun(t, ts.URL, testProject(t, 30, 1, 3), "", nil); rr.Cache != "hit" {
		t.Fatalf("newest shape cache = %q, want hit", rr.Cache)
	}
	if rr, _ := postRun(t, ts.URL, testProject(t, 10, 1, 3), "", nil); rr.Cache != "miss" {
		t.Fatalf("evicted shape cache = %q, want miss", rr.Cache)
	}
	st := scrapeStats(t, ts.URL)
	if st.Cache.Entries != 2 {
		t.Fatalf("entries = %d, want 2 (cap)", st.Cache.Entries)
	}
	if st.Cache.Evictions < 2 {
		t.Fatalf("evictions = %d, want >= 2", st.Cache.Evictions)
	}
}

// TestServeBackpressure: with one execution slot and no waiting room,
// a submission that arrives while the slot is held is rejected with
// 429 and a Retry-After hint.
func TestServeBackpressure(t *testing.T) {
	s := New(Options{DefaultAlg: "etf", MaxConcurrent: 1, QueueDepth: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Hold the only execution slot, as a long run would.
	s.sem <- struct{}{}
	rr, resp := postRun(t, ts.URL, testProject(t, 10, 1, 3), "", nil)
	if rr != nil {
		t.Fatal("submission with the slot held should have been rejected")
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response is missing Retry-After")
	}
	<-s.sem

	// With the slot free the same submission is served.
	if rr, resp := postRun(t, ts.URL, testProject(t, 10, 1, 3), "", nil); rr == nil {
		t.Fatalf("submission with a free slot rejected: %d", resp.StatusCode)
	}
	if st := scrapeStats(t, ts.URL); st.Runs.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Runs.Rejected)
	}
}

// TestServeQueueAdmitsThenOverflows: one slot plus one queue seat
// admits a waiter and rejects the one after it.
func TestServeQueueAdmitsThenOverflows(t *testing.T) {
	s := New(Options{DefaultAlg: "etf", MaxConcurrent: 1, QueueDepth: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	s.sem <- struct{}{} // the slot is busy
	var wg sync.WaitGroup
	wg.Add(1)
	served := make(chan *RunResponse, 1)
	go func() {
		defer wg.Done()
		rr, _ := postRun(t, ts.URL, testProject(t, 10, 1, 3), "", nil)
		served <- rr
	}()
	// Wait until the first submission occupies the queue seat.
	deadline := time.Now().Add(5 * time.Second)
	for s.waiting.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if s.waiting.Load() == 0 {
		t.Fatal("first submission never queued")
	}
	// The queue seat is taken: the next submission overflows.
	if rr, resp := postRun(t, ts.URL, testProject(t, 10, 1, 3), "", nil); rr != nil || resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submission: rr=%v status=%d, want 429", rr, resp.StatusCode)
	}
	// Freeing the slot serves the queued submission.
	<-s.sem
	wg.Wait()
	if rr := <-served; rr == nil {
		t.Fatal("queued submission was never served")
	}
}

// TestServeTenantCap: one tenant at its in-flight cap is rejected
// while another tenant still gets through.
func TestServeTenantCap(t *testing.T) {
	s := New(Options{DefaultAlg: "etf", TenantCap: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Pin tenant "alpha" at its cap, as a long in-flight run would.
	s.mu.Lock()
	s.tenants["alpha"] = 1
	s.mu.Unlock()

	rr, resp := postRun(t, ts.URL, testProject(t, 10, 1, 3), "", map[string]string{"X-Tenant": "alpha"})
	if rr != nil || resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("capped tenant: rr=%v status=%d, want 429", rr, resp.StatusCode)
	}
	if rr, resp := postRun(t, ts.URL, testProject(t, 10, 1, 3), "", map[string]string{"X-Tenant": "beta"}); rr == nil {
		t.Fatalf("other tenant rejected: %d", resp.StatusCode)
	}

	s.mu.Lock()
	delete(s.tenants, "alpha")
	s.mu.Unlock()
	if rr, resp := postRun(t, ts.URL, testProject(t, 10, 1, 3), "", map[string]string{"X-Tenant": "alpha"}); rr == nil {
		t.Fatalf("tenant under cap rejected: %d", resp.StatusCode)
	}
}

func TestServeTraceStream(t *testing.T) {
	s := New(Options{DefaultAlg: "etf", Virtual: true})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(testProject(t, 10, 1, 3))
	resp, err := http.Post(ts.URL+"/run?trace=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	dec := json.NewDecoder(resp.Body)
	var events int
	var last json.RawMessage
	for dec.More() {
		var line json.RawMessage
		if err := dec.Decode(&line); err != nil {
			t.Fatal(err)
		}
		events++
		last = line
	}
	if events < 5 { // 4 task starts/ends plus messages, then the result
		t.Fatalf("streamed only %d lines", events)
	}
	var rr RunResponse
	if err := json.Unmarshal(last, &rr); err != nil || rr.Outputs["out"] != "15" {
		t.Fatalf("final stream line is not the result: %s (%v)", last, err)
	}
}

func TestServeRejectsGarbage(t *testing.T) {
	s := New(Options{DefaultAlg: "etf"})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body: status = %d, want 400", resp.StatusCode)
	}
	// Unknown scheduler: a well-formed project that cannot compile.
	body, _ := json.Marshal(testProject(t, 10, 1, 3))
	resp, err = http.Post(ts.URL+"/run?alg=nope", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("unknown alg: status = %d, want 422", resp.StatusCode)
	}
	if resp, err := http.Get(ts.URL + "/run"); err != nil || resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /run: %v %d", err, resp.StatusCode)
	}
	if st := scrapeStats(t, ts.URL); st.Runs.Failed != 2 {
		t.Fatalf("failed = %d, want 2", st.Runs.Failed)
	}
}

// TestServeDrainAndShutdownLeakFree: draining refuses new work, waits
// out in-flight runs, and leaves no goroutines behind — the shutdown
// contract the CI smoke job asserts via /stats.
func TestServeDrainAndShutdownLeakFree(t *testing.T) {
	base := runtime.NumGoroutine()
	s := New(Options{DefaultAlg: "etf"})
	ts := httptest.NewServer(s.Handler())

	for i := 0; i < 4; i++ {
		if rr, resp := postRun(t, ts.URL, testProject(t, 10, 1, float64(i)), "", nil); rr == nil {
			t.Fatalf("warm-up run %d rejected: %d", i, resp.StatusCode)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Draining: health reports it and new submissions bounce.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d, want 503", resp.StatusCode)
	}
	if rr, resp := postRun(t, ts.URL, testProject(t, 10, 1, 3), "", nil); rr != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submission while draining: rr=%v status=%d, want 503", rr, resp.StatusCode)
	}
	ts.Close()

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base+2 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base+2 {
		t.Fatalf("goroutines grew from %d to %d across serve lifetime", base, n)
	}
}

// TestServeFleetMode runs the control plane against a live in-process
// worker fleet and checks outputs match the in-process engine.
func TestServeFleetMode(t *testing.T) {
	tr := wire.Inproc()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		addr := fmt.Sprintf("worker-%d", i)
		ready := make(chan struct{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			wire.ServeWorker(ctx, tr, addr, wire.WorkerOptions{Logf: t.Logf}, func(string) { close(ready) })
		}()
		<-ready
	}
	defer wg.Wait()
	defer cancel()

	fleet := &wire.Fleet{Transport: tr, Control: "fleet-control",
		Seed: []string{"worker-0", "worker-1"}, Mesh: true, Logf: t.Logf}
	if err := fleet.Start(); err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	s := New(Options{DefaultAlg: "etf", Fleet: fleet})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// The same submission through the local engine, for comparison.
	p := testProject(t, 10, 1, 3)
	entry, _, err := New(Options{DefaultAlg: "etf"}).compile(p, "etf")
	if err != nil {
		t.Fatal(err)
	}
	want, err := (&exec.Runner{Inputs: p.Inputs}).Run(entry.sc, entry.flat)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 3; i++ {
		rr, resp := postRun(t, ts.URL, testProject(t, 10, 1, 3), "", nil)
		if rr == nil {
			t.Fatalf("fleet run %d rejected: %d", i, resp.StatusCode)
		}
		for k, v := range want.Outputs {
			if rr.Outputs[k] != fmt.Sprintf("%s", v) {
				t.Fatalf("fleet run %d: output %s = %q, want %q", i, k, rr.Outputs[k], v)
			}
		}
	}
	st := scrapeStats(t, ts.URL)
	if st.Fleet.Size != 2 || st.Fleet.Control == "" {
		t.Fatalf("fleet stats = %+v", st.Fleet)
	}
	if st.Cache.Hits != 2 || st.Cache.Misses != 1 {
		t.Fatalf("cache stats over fleet = %+v", st.Cache)
	}
}
