// Package serve is the scheduling-as-a-service control plane: a
// long-running HTTP/JSON server that accepts design + machine
// submissions, schedules them through the core heuristics, executes
// them — in-process or on a shared elastic worker fleet — and reports
// results, with admission control, per-tenant fairness and a schedule
// cache that amortizes construction across same-shape requests.
package serve

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/sched"
)

// cacheEntry is a reusable compiled submission: the flattened design
// and its finalized schedule. Both are immutable after Finalize and
// Topo.Precompute, so concurrent cache-hit runs share them freely;
// only the input values differ per request.
type cacheEntry struct {
	flat *graph.Flat
	sc   *sched.Schedule
}

// scheduleCache is an LRU map from sched.Fingerprint keys to compiled
// submissions. Hits and misses are counted for /stats; the capacity
// bounds live entries (a 501-task schedule plus its graph is a few MB,
// so the default cap keeps the cache to a manageable footprint).
type scheduleCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *cachePair
	byKey map[string]*list.Element

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type cachePair struct {
	key   string
	entry cacheEntry
}

// newScheduleCache builds a cache holding at most cap entries; cap <=
// 0 disables caching entirely (every lookup misses, nothing is kept).
func newScheduleCache(cap int) *scheduleCache {
	return &scheduleCache{cap: cap, order: list.New(), byKey: map[string]*list.Element{}}
}

// get returns the cached compiled submission and bumps its recency.
func (c *scheduleCache) get(key string) (cacheEntry, bool) {
	if c.cap <= 0 {
		c.misses.Add(1)
		return cacheEntry{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses.Add(1)
		return cacheEntry{}, false
	}
	c.order.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*cachePair).entry, true
}

// put inserts a compiled submission, evicting the least recently used
// entry when over capacity. Racing inserts of the same key keep the
// first; the duplicates' work is simply discarded.
func (c *scheduleCache) put(key string, e cacheEntry) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&cachePair{key: key, entry: e})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cachePair).key)
		c.evictions.Add(1)
	}
}

// len reports the live entry count.
func (c *scheduleCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// CacheStats is the cache section of the /stats document.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Cap       int   `json:"cap"`
}

func (c *scheduleCache) stats() CacheStats {
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.len(),
		Cap:       c.cap,
	}
}
