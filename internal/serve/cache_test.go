package serve

import (
	"fmt"
	"sync"
	"testing"
)

func TestScheduleCacheLRU(t *testing.T) {
	c := newScheduleCache(2)
	c.put("a", cacheEntry{})
	c.put("b", cacheEntry{})
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	// "a" was just used, so inserting "c" must evict "b".
	c.put("c", cacheEntry{})
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived past capacity despite being least recently used")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted despite being recently used")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("c missing after insert")
	}
	st := c.stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 entries / 1 eviction", st)
	}
	if st.Hits != 3 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 3 hits / 1 miss", st)
	}
}

func TestScheduleCacheDisabled(t *testing.T) {
	c := newScheduleCache(-1)
	c.put("a", cacheEntry{})
	if _, ok := c.get("a"); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if st := c.stats(); st.Entries != 0 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestScheduleCacheDuplicatePut(t *testing.T) {
	c := newScheduleCache(4)
	c.put("a", cacheEntry{})
	c.put("a", cacheEntry{})
	if n := c.len(); n != 1 {
		t.Fatalf("len = %d after duplicate put, want 1", n)
	}
}

// TestScheduleCacheConcurrent hammers the cache from many goroutines;
// the race detector is the oracle.
func TestScheduleCacheConcurrent(t *testing.T) {
	c := newScheduleCache(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g+i)%16)
				if _, ok := c.get(key); !ok {
					c.put(key, cacheEntry{})
				}
			}
		}(g)
	}
	wg.Wait()
	if n := c.len(); n > 8 {
		t.Fatalf("len = %d exceeds cap 8", n)
	}
}
