package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/project"
	"repro/internal/sched"
	"repro/internal/wire"
)

// Options configures a Server. Zero values pick serving defaults;
// negative values disable the corresponding mechanism where noted.
type Options struct {
	// DefaultAlg schedules submissions that name no algorithm
	// ("" = mh, the paper's flagship heuristic).
	DefaultAlg string
	// Workers is the schedule-construction worker count passed to the
	// scheduler on cache misses (0 = automatic).
	Workers int
	// MaxConcurrent bounds simultaneously executing runs
	// (0 = GOMAXPROCS). Fleet runs execute concurrently too: worker
	// daemons multiplex sessions keyed by run ID, and the fleet places
	// each admitted run on its least-loaded member subset.
	MaxConcurrent int
	// QueueDepth bounds runs admitted but waiting for an execution
	// slot; beyond it submissions are rejected with 429 + Retry-After
	// (0 = 64, negative = no waiting room at all).
	QueueDepth int
	// TenantCap bounds one tenant's in-flight runs, executing plus
	// queued (0 = 8, negative = unlimited). The tenant is the
	// X-Tenant request header ("anon" when absent).
	TenantCap int
	// CacheCap bounds the schedule cache (0 = 128 entries, negative =
	// caching disabled).
	CacheCap int
	// Fleet, when set, executes runs on a shared elastic worker fleet
	// instead of in-process goroutines.
	Fleet *wire.Fleet
	// Virtual stamps traces in deterministic virtual time.
	Virtual bool
	// WatchdogMin raises the wall-clock floor of every per-receive
	// watchdog deadline (0 = the runner's 1s default). The default
	// suits a run with the host to itself; a server time-slicing
	// MaxConcurrent runs across few cores stretches every wall
	// interval by roughly that factor, so size the floor accordingly
	// or hair-trigger timeouts abort healthy runs under load.
	WatchdogMin time.Duration
	Logf        func(string, ...any)
}

// Server is the control plane: it owns the schedule cache, the
// admission machinery and the shared execution statistics, and serves
// POST /run, GET /healthz and GET /stats.
type Server struct {
	opts  Options
	alg   string
	cache *scheduleCache
	stats *exec.Stats
	sem   chan struct{}
	start time.Time

	waiting  atomic.Int64 // admitted, not yet holding an execution slot
	active   atomic.Int64 // holding an execution slot
	total    atomic.Int64 // completed runs (success or failure)
	failed   atomic.Int64
	rejected atomic.Int64 // turned away by admission control

	mu      sync.Mutex
	tenants map[string]int

	draining atomic.Bool
	inflight sync.WaitGroup
	mux      *http.ServeMux
}

// New builds a Server. The fleet, if any, must already be started.
func New(opts Options) *Server {
	if opts.DefaultAlg == "" {
		opts.DefaultAlg = "mh"
	}
	if opts.MaxConcurrent == 0 {
		opts.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth == 0 {
		opts.QueueDepth = 64
	}
	if opts.TenantCap == 0 {
		opts.TenantCap = 8
	}
	if opts.CacheCap == 0 {
		opts.CacheCap = 128
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	s := &Server{
		opts:    opts,
		alg:     opts.DefaultAlg,
		cache:   newScheduleCache(opts.CacheCap),
		stats:   &exec.Stats{},
		sem:     make(chan struct{}, opts.MaxConcurrent),
		start:   time.Now(),
		tenants: map[string]int{},
		mux:     http.NewServeMux(),
	}
	s.mux.HandleFunc("/run", s.handleRun)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/stats", s.handleStats)
	return s
}

// Handler returns the HTTP handler for the control plane.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain stops admitting runs and waits for the in-flight ones to
// finish (or ctx to expire). The fleet, if any, is left running —
// closing it is the owner's business.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain: %d runs still in flight: %w",
			s.waiting.Load()+s.active.Load(), ctx.Err())
	}
}

// RunResponse is the result document of one submission. Execution
// fields (printed, outputs, tasks) are absent in schedule-only mode;
// prediction fields (makespan_us, pes, speedup) are absent in run
// mode.
type RunResponse struct {
	Name      string            `json:"name"`
	Algorithm string            `json:"alg"`
	Cache     string            `json:"cache"` // "hit" or "miss"
	ElapsedUS int64             `json:"elapsed_us"`
	Tasks     int64             `json:"tasks,omitempty"`
	Msgs      int64             `json:"msgs"`
	Printed   []string          `json:"printed,omitempty"`
	Outputs   map[string]string `json:"outputs,omitempty"`

	MakespanUS int64   `json:"makespan_us,omitempty"`
	PEs        int     `json:"pes,omitempty"`
	Speedup    float64 `json:"speedup,omitempty"`
}

// traceEvent is the streamed projection of one trace event.
type traceEvent struct {
	Kind string `json:"kind"`
	At   int64  `json:"at"`
	Task string `json:"task,omitempty"`
	PE   int    `json:"pe"`
	Var  string `json:"var,omitempty"`
	Peer int    `json:"peer,omitempty"`
	Note string `json:"note,omitempty"`
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// admit applies admission control for one submission. It returns a
// release function when the request may proceed to wait for an
// execution slot, or writes the rejection and returns nil.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (tenant string, release func()) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return "", nil
	}
	tenant = r.Header.Get("X-Tenant")
	if tenant == "" {
		tenant = "anon"
	}
	if cap := s.opts.TenantCap; cap > 0 {
		s.mu.Lock()
		if s.tenants[tenant] >= cap {
			s.mu.Unlock()
			s.rejected.Add(1)
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests,
				"tenant %q already has %d runs in flight", tenant, cap)
			return "", nil
		}
		s.tenants[tenant]++
		s.mu.Unlock()
	}
	// Acquire an execution slot, queueing when all are busy. The run
	// queue is bounded: beyond the configured depth the server is
	// saturated, and honest backpressure beats unbounded queueing.
	select {
	case s.sem <- struct{}{}: // a slot is free; no queueing needed
	default:
		if s.waiting.Load() >= int64(max(s.opts.QueueDepth, 0)) {
			s.releaseTenant(tenant)
			s.rejected.Add(1)
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests,
				"run queue is full (%d waiting)", s.waiting.Load())
			return "", nil
		}
		s.waiting.Add(1)
		select {
		case s.sem <- struct{}{}:
			s.waiting.Add(-1)
		case <-r.Context().Done():
			s.waiting.Add(-1)
			s.releaseTenant(tenant)
			s.rejected.Add(1)
			return "", nil
		}
	}
	s.active.Add(1)
	s.inflight.Add(1)
	return tenant, func() {
		s.active.Add(-1)
		<-s.sem
		s.releaseTenant(tenant)
		s.inflight.Done()
	}
}

func (s *Server) releaseTenant(tenant string) {
	if s.opts.TenantCap > 0 {
		s.mu.Lock()
		s.tenants[tenant]--
		if s.tenants[tenant] <= 0 {
			delete(s.tenants, tenant)
		}
		s.mu.Unlock()
	}
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a project document to /run")
		return
	}
	_, release := s.admit(w, r)
	if release == nil {
		return
	}
	defer release()

	var p project.Project
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&p); err != nil {
		s.failRun(w, http.StatusBadRequest, "parsing project: %v", err)
		return
	}
	alg := r.URL.Query().Get("alg")
	if alg == "" {
		alg = s.alg
	}
	mode := r.URL.Query().Get("mode")
	if mode != "" && mode != "run" && mode != "schedule" {
		s.failRun(w, http.StatusBadRequest, "unknown mode %q (want run or schedule)", mode)
		return
	}

	start := time.Now()
	entry, verdict, err := s.compile(&p, alg)
	if err != nil {
		s.failRun(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}

	if mode == "schedule" {
		// Schedule-only: the paper's interactive predict step as a
		// service — map the design, report the predicted makespan and
		// speedup, skip execution. This is the regime where the
		// schedule cache is the entire cost of a request.
		s.total.Add(1)
		sc := entry.sc
		msgs, _ := sc.CommVolume()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(RunResponse{
			Name: p.Name, Algorithm: alg, Cache: verdict,
			ElapsedUS:  time.Since(start).Microseconds(),
			Msgs:       int64(msgs),
			MakespanUS: int64(sc.Makespan()),
			PEs:        sc.UsedPEs(),
			Speedup:    sc.Speedup(),
		})
		return
	}

	runner := &exec.Runner{Inputs: p.Inputs, Stats: s.stats, VirtualTime: s.opts.Virtual,
		WatchdogMin: s.opts.WatchdogMin}
	var res *exec.Result
	if s.opts.Fleet != nil {
		res, err = s.opts.Fleet.Run(r.Context(), runner, entry.sc, entry.flat)
	} else {
		res, err = runner.RunContext(r.Context(), entry.sc, entry.flat)
	}
	if err != nil {
		s.failRun(w, http.StatusInternalServerError, "run failed: %v", err)
		return
	}
	s.total.Add(1)

	resp := RunResponse{
		Name: p.Name, Algorithm: alg, Cache: verdict,
		ElapsedUS: res.Elapsed.Microseconds(),
		Printed:   res.Printed,
		Outputs:   renderOutputs(res),
	}
	if st, err := res.Trace.Summarize(entry.sc.Machine.NumPE()); err == nil {
		resp.Tasks, resp.Msgs = int64(st.TasksRun), int64(st.Msgs)
	}

	w.Header().Set("Content-Type", "application/json")
	if r.URL.Query().Get("trace") == "" {
		json.NewEncoder(w).Encode(resp)
		return
	}
	// Trace mode streams newline-delimited JSON: one line per trace
	// event, then the result document.
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	res.Trace.Sort()
	for _, ev := range res.Trace.Events {
		enc.Encode(traceEvent{Kind: ev.Kind.String(), At: int64(ev.At),
			Task: string(ev.Task), PE: ev.PE, Var: ev.Var, Peer: ev.Peer, Note: ev.Note})
	}
	enc.Encode(resp)
}

func (s *Server) failRun(w http.ResponseWriter, code int, format string, args ...any) {
	s.total.Add(1)
	s.failed.Add(1)
	httpError(w, code, format, args...)
}

// compile turns a submission into a runnable {flat graph, schedule}
// pair, paying scheduling only on cache misses. The fingerprint covers
// the flattened design (weights included), the machine and the
// algorithm — input values deliberately excluded, so the steady-state
// service regime of same-shape/different-data requests schedules once.
func (s *Server) compile(p *project.Project, alg string) (cacheEntry, string, error) {
	env, err := core.Open(p)
	if err != nil {
		return cacheEntry{}, "", fmt.Errorf("opening project: %w", err)
	}
	key := sched.Fingerprint(env.Flat, p.Machine, alg)
	if entry, ok := s.cache.get(key); ok {
		return entry, "hit", nil
	}
	sc, err := env.ScheduleOnWorkers(alg, p.Machine, s.opts.Workers)
	if err != nil {
		return cacheEntry{}, "", fmt.Errorf("scheduling: %w", err)
	}
	// Finalize the derived views and routing tables before the pair is
	// shared across concurrent cache-hit runs — the lazy builds are not
	// synchronized.
	sc.Finalize()
	sc.Machine.Topo.Precompute()
	entry := cacheEntry{flat: env.Flat, sc: sc}
	s.cache.put(key, entry)
	return entry, "miss", nil
}

// renderOutputs renders the run's external outputs exactly as `banger
// run` prints them, so batch-vs-serial comparisons are byte-level.
func renderOutputs(res *exec.Result) map[string]string {
	out := make(map[string]string, len(res.Outputs))
	for k, v := range res.Outputs {
		out[k] = fmt.Sprintf("%s", v)
	}
	return out
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	if s.draining.Load() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{
		"status": status,
		"fleet":  s.fleetSize(),
	})
}

func (s *Server) fleetSize() int {
	if s.opts.Fleet == nil {
		return 0
	}
	return s.opts.Fleet.Size()
}

// StatsResponse is the /stats document.
type StatsResponse struct {
	UptimeUS int64 `json:"uptime_us"`
	Runs     struct {
		Total    int64 `json:"total"`
		Failed   int64 `json:"failed"`
		Rejected int64 `json:"rejected"`
		Active   int64 `json:"active"`
		Queued   int64 `json:"queued"`
	} `json:"runs"`
	Cache CacheStats         `json:"cache"`
	Exec  exec.StatsSnapshot `json:"exec"`
	Fleet struct {
		Size    int      `json:"size"`
		Control string   `json:"control,omitempty"`
		Members []string `json:"members,omitempty"`
	} `json:"fleet"`
	Goroutines int `json:"goroutines"`
}

// Stats snapshots the control plane's counters (also the /stats body).
func (s *Server) Stats() StatsResponse {
	var resp StatsResponse
	resp.UptimeUS = time.Since(s.start).Microseconds()
	resp.Runs.Total = s.total.Load()
	resp.Runs.Failed = s.failed.Load()
	resp.Runs.Rejected = s.rejected.Load()
	resp.Runs.Active = s.active.Load()
	resp.Runs.Queued = s.waiting.Load()
	resp.Cache = s.cache.stats()
	resp.Exec = s.stats.Snapshot()
	if f := s.opts.Fleet; f != nil {
		resp.Fleet.Size = f.Size()
		resp.Fleet.Control = f.Addr()
		m := f.Members()
		sort.Strings(m)
		resp.Fleet.Members = m
	}
	resp.Goroutines = runtime.NumGoroutine()
	return resp
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Stats())
}
