package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTopoSortChain(t *testing.T) {
	g := Chain(5, 1, 1)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 5 {
		t.Fatalf("order length %d", len(order))
	}
	for i, id := range order {
		if want := NodeID([]string{"t0", "t1", "t2", "t3", "t4"}[i]); id != want {
			t.Errorf("order[%d] = %s, want %s", i, id, want)
		}
	}
}

func TestTopoSortDetectsCycle(t *testing.T) {
	g := New("cyc")
	g.MustAddTask("a", "", 1)
	g.MustAddTask("b", "", 1)
	g.MustConnect("a", "b", "x", 0)
	g.MustConnect("b", "a", "y", 0)
	if _, err := g.TopoSort(); err == nil {
		t.Fatal("cycle not detected")
	}
}

// topoRespectsArcs checks the defining property of a topological order.
func topoRespectsArcs(t *testing.T, g *Graph) {
	t.Helper()
	order, err := g.TopoSort()
	if err != nil {
		t.Fatalf("TopoSort: %v", err)
	}
	pos := map[NodeID]int{}
	for i, id := range order {
		pos[id] = i
	}
	if len(pos) != g.Len() {
		t.Fatalf("order has %d distinct nodes, graph has %d", len(pos), g.Len())
	}
	for _, a := range g.Arcs() {
		if pos[a.From] >= pos[a.To] {
			t.Errorf("arc %s->%s violated: pos %d >= %d", a.From, a.To, pos[a.From], pos[a.To])
		}
	}
}

func TestTopoSortPropertyRandomGraphs(t *testing.T) {
	f := func(seed int64, layers, width uint8, density float64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := LayeredConfig{
			Layers: int(layers%6) + 1, Width: int(width%5) + 1,
			MinWork: 1, MaxWork: 9, MinWords: 0, MaxWords: 4,
			Density: mod1(density),
		}
		g, err := LayeredRandom(rng, cfg)
		if err != nil {
			return false
		}
		topoRespectsArcs(t, g)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func mod1(f float64) float64 {
	if f < 0 {
		f = -f
	}
	for f > 1 {
		f /= 10
	}
	return f
}

func TestLevelsChain(t *testing.T) {
	g := Chain(3, 10, 2) // t0 -> t1 -> t2, work 10 each, 2 words per arc
	lv, err := g.ComputeLevels(1)
	if err != nil {
		t.Fatal(err)
	}
	if lv.TLevel["t0"] != 0 || lv.TLevel["t1"] != 12 || lv.TLevel["t2"] != 24 {
		t.Errorf("TLevels = %v", lv.TLevel)
	}
	if lv.BLevel["t2"] != 10 || lv.BLevel["t1"] != 22 || lv.BLevel["t0"] != 34 {
		t.Errorf("BLevels = %v", lv.BLevel)
	}
	// Static levels ignore arc weights.
	if lv.SLevel["t0"] != 30 || lv.SLevel["t1"] != 20 || lv.SLevel["t2"] != 10 {
		t.Errorf("SLevels = %v", lv.SLevel)
	}
}

func TestLevelsDiamond(t *testing.T) {
	g := Diamond(5, 3)
	lv, err := g.ComputeLevels(1)
	if err != nil {
		t.Fatal(err)
	}
	// a(5) -3-> b(5) -3-> d(5): t-level of d = 5+3+5+3 = 16.
	if lv.TLevel["d"] != 16 {
		t.Errorf("TLevel[d] = %d, want 16", lv.TLevel["d"])
	}
	if lv.BLevel["a"] != 21 {
		t.Errorf("BLevel[a] = %d, want 21", lv.BLevel["a"])
	}
}

func TestCriticalPathChain(t *testing.T) {
	g := Chain(4, 10, 5)
	path, length, err := g.CriticalPath(1)
	if err != nil {
		t.Fatal(err)
	}
	if length != 4*10+3*5 {
		t.Errorf("critical path length = %d, want 55", length)
	}
	if len(path) != 4 || path[0] != "t0" || path[3] != "t3" {
		t.Errorf("path = %v", path)
	}
}

func TestCriticalPathPicksHeavierBranch(t *testing.T) {
	g := New("g")
	g.MustAddTask("a", "", 1)
	g.MustAddTask("light", "", 1)
	g.MustAddTask("heavy", "", 100)
	g.MustAddTask("z", "", 1)
	g.MustConnect("a", "light", "l", 0)
	g.MustConnect("a", "heavy", "h", 0)
	g.MustConnect("light", "z", "lz", 0)
	g.MustConnect("heavy", "z", "hz", 0)
	path, length, err := g.CriticalPath(1)
	if err != nil {
		t.Fatal(err)
	}
	if length != 102 {
		t.Errorf("length = %d, want 102", length)
	}
	found := false
	for _, id := range path {
		if id == "heavy" {
			found = true
		}
	}
	if !found {
		t.Errorf("critical path %v skips heavy branch", path)
	}
}

func TestCriticalPathEmpty(t *testing.T) {
	g := New("empty")
	path, length, err := g.CriticalPath(1)
	if err != nil || path != nil || length != 0 {
		t.Errorf("empty graph: path=%v len=%d err=%v", path, length, err)
	}
}

func TestCriticalPathPropertyMatchesBLevelMax(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := LayeredRandom(rng, LayeredConfig{Layers: 4, Width: 3, MinWork: 1, MaxWork: 20, MinWords: 0, MaxWords: 10, Density: 0.4})
		if err != nil {
			return false
		}
		_, length, err := g.CriticalPath(1)
		if err != nil {
			return false
		}
		lv, err := g.ComputeLevels(1)
		if err != nil {
			return false
		}
		var max int64
		for _, id := range lv.Order {
			if lv.BLevel[id]+lv.TLevel[id] > max {
				max = lv.BLevel[id] + lv.TLevel[id]
			}
		}
		return length == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestWidthDepth(t *testing.T) {
	g := ForkJoin(6, 1, 1)
	w, err := g.Width()
	if err != nil || w != 6 {
		t.Errorf("Width = %d (%v), want 6", w, err)
	}
	d, err := g.Depth()
	if err != nil || d != 3 {
		t.Errorf("Depth = %d (%v), want 3", d, err)
	}
}

func TestAncestorsDescendants(t *testing.T) {
	g := Chain(4, 1, 1)
	anc := g.Ancestors("t3")
	if len(anc) != 3 {
		t.Errorf("Ancestors(t3) = %v", anc)
	}
	desc := g.Descendants("t0")
	if len(desc) != 3 {
		t.Errorf("Descendants(t0) = %v", desc)
	}
	if got := g.Ancestors("t0"); len(got) != 0 {
		t.Errorf("Ancestors(t0) = %v, want empty", got)
	}
}

func TestAncestorsDescendantsDuality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := LayeredRandom(rng, LayeredConfig{Layers: 4, Width: 3, MinWork: 1, MaxWork: 5, MinWords: 0, MaxWords: 2, Density: 0.5})
		if err != nil {
			return false
		}
		// b in Ancestors(a) <=> a in Descendants(b)
		for _, a := range g.Nodes() {
			for _, b := range g.Ancestors(a.ID) {
				found := false
				for _, d := range g.Descendants(b) {
					if d == a.ID {
						found = true
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
