package graph

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the graph in Graphviz dot syntax. Tasks are ovals,
// storage cells are boxes, decomposable nodes are double octagons and
// ports are plain text — matching the visual vocabulary of the paper's
// Figure 1. Subgraphs are rendered as dot clusters.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.Name)
	b.WriteString("  rankdir=TB;\n")
	g.dotBody(&b, "", "  ")
	b.WriteString("}\n")
	return b.String()
}

func (g *Graph) dotBody(b *strings.Builder, prefix, indent string) {
	for _, n := range g.nodes {
		id := prefix + string(n.ID)
		label := n.Label
		if label == "" {
			label = string(n.ID)
		}
		switch n.Kind {
		case KindTask:
			fmt.Fprintf(b, "%s%q [shape=ellipse,label=%q];\n", indent, id, label)
		case KindStorage:
			fmt.Fprintf(b, "%s%q [shape=box,label=%q];\n", indent, id, label)
		case KindInput:
			fmt.Fprintf(b, "%s%q [shape=plaintext,label=%q];\n", indent, id, "in "+label)
		case KindOutput:
			fmt.Fprintf(b, "%s%q [shape=plaintext,label=%q];\n", indent, id, "out "+label)
		case KindSub:
			fmt.Fprintf(b, "%ssubgraph \"cluster_%s\" {\n", indent, id)
			fmt.Fprintf(b, "%s  label=%q;\n", indent, label)
			fmt.Fprintf(b, "%s  %q [shape=doubleoctagon,label=%q];\n", indent, id, label)
			n.Sub.dotBody(b, id+"/", indent+"  ")
			fmt.Fprintf(b, "%s}\n", indent)
		}
	}
	for _, a := range g.arcs {
		lbl := a.Var
		if a.Words > 0 {
			lbl = fmt.Sprintf("%s(%d)", a.Var, a.Words)
		}
		fmt.Fprintf(b, "%s%q -> %q [label=%q];\n", indent, prefix+string(a.From), prefix+string(a.To), lbl)
	}
}

// ASCII renders the graph as a levelled text diagram: one line per
// depth level listing its nodes, followed by the arc list. It is the
// terminal stand-in for the paper's drawn dataflow diagrams.
func (g *Graph) ASCII() string {
	order, err := g.TopoSort()
	if err != nil {
		return fmt.Sprintf("<<graph %q: %v>>", g.Name, err)
	}
	depth := make(map[NodeID]int, len(order))
	maxd := 0
	for _, id := range order {
		d := 0
		for _, a := range g.Pred(id) {
			if depth[a.From]+1 > d {
				d = depth[a.From] + 1
			}
		}
		depth[id] = d
		if d > maxd {
			maxd = d
		}
	}
	byDepth := make([][]NodeID, maxd+1)
	for _, id := range order {
		byDepth[depth[id]] = append(byDepth[depth[id]], id)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q: %d nodes, %d arcs\n", g.Name, g.Len(), g.NumArcs())
	for d, ids := range byDepth {
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		var cells []string
		for _, id := range ids {
			n := g.index[id]
			switch n.Kind {
			case KindStorage:
				cells = append(cells, fmt.Sprintf("[%s]", id))
			case KindSub:
				cells = append(cells, fmt.Sprintf("<<%s>>", id))
			case KindInput:
				cells = append(cells, fmt.Sprintf(">%s", id))
			case KindOutput:
				cells = append(cells, fmt.Sprintf("%s>", id))
			default:
				cells = append(cells, fmt.Sprintf("(%s:%d)", id, n.Work))
			}
		}
		fmt.Fprintf(&b, "  L%-2d %s\n", d, strings.Join(cells, "  "))
	}
	b.WriteString("  arcs:\n")
	for _, a := range g.arcs {
		fmt.Fprintf(&b, "    %s -%s(%d)-> %s\n", a.From, a.Var, a.Words, a.To)
	}
	return b.String()
}

// Summary returns a one-line description of the graph's size and shape.
func (g *Graph) Summary() string {
	w, _ := g.Width()
	d, _ := g.Depth()
	return fmt.Sprintf("%s: %d nodes (%d tasks), %d arcs, width %d, depth %d, work %d, words %d",
		g.Name, g.Len(), len(g.Tasks()), g.NumArcs(), w, d, g.TotalWork(), g.TotalWords())
}
