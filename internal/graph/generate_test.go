package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestChainShape(t *testing.T) {
	g := Chain(6, 2, 3)
	if g.Len() != 6 || g.NumArcs() != 5 {
		t.Fatalf("chain: %s", g.Summary())
	}
	d, _ := g.Depth()
	if d != 6 {
		t.Errorf("depth = %d", d)
	}
	w, _ := g.Width()
	if w != 1 {
		t.Errorf("width = %d", w)
	}
}

func TestForkJoinShape(t *testing.T) {
	g := ForkJoin(8, 2, 3)
	if g.Len() != 10 || g.NumArcs() != 16 {
		t.Fatalf("forkjoin: %s", g.Summary())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOutTreeInTreeShapes(t *testing.T) {
	out := OutTree(2, 3, 1, 1) // 1 + 2 + 4 = 7 nodes
	if out.Len() != 7 || out.NumArcs() != 6 {
		t.Errorf("outtree: %s", out.Summary())
	}
	if len(out.Entries()) != 1 {
		t.Errorf("outtree entries = %v", out.Entries())
	}
	in := InTree(2, 3, 1, 1)
	if in.Len() != 7 || in.NumArcs() != 6 {
		t.Errorf("intree: %s", in.Summary())
	}
	if len(in.Exits()) != 1 {
		t.Errorf("intree exits = %v", in.Exits())
	}
}

func TestFFTShape(t *testing.T) {
	g, err := FFT(4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 4-point FFT: ranks = 2, so 3 rows of 4 nodes = 12 nodes, 16 arcs.
	if g.Len() != 12 || g.NumArcs() != 16 {
		t.Fatalf("fft: %s", g.Summary())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	d, _ := g.Depth()
	if d != 3 {
		t.Errorf("depth = %d, want 3", d)
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{0, 1, 3, 6, 100} {
		if _, err := FFT(n, 1, 1); err == nil {
			t.Errorf("FFT(%d) accepted", n)
		}
	}
}

func TestGEShape(t *testing.T) {
	g := GE(3, 5, 10, 2)
	// n=3: pivots p0,p1; updates u0.1,u0.2,u1.2 => 5 tasks.
	if g.Len() != 5 {
		t.Fatalf("ge: %s", g.Summary())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// p1 depends on u0.1 which depends on p0: depth 4 via p0->u0.1->p1->u1.2.
	d, _ := g.Depth()
	if d != 4 {
		t.Errorf("depth = %d, want 4", d)
	}
}

func TestGELargerIsAcyclicAndConnected(t *testing.T) {
	g := GE(8, 5, 10, 2)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Entries()) != 1 {
		t.Errorf("GE should have single entry p0, got %v", g.Entries())
	}
}

func TestLayeredRandomValidatesConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bad := []LayeredConfig{
		{Layers: 0, Width: 1},
		{Layers: 1, Width: 0},
		{Layers: 1, Width: 1, MinWork: 5, MaxWork: 1},
		{Layers: 1, Width: 1, MinWords: 5, MaxWords: 1},
		{Layers: 1, Width: 1, MinWork: -1, MaxWork: 1},
	}
	for _, cfg := range bad {
		if _, err := LayeredRandom(rng, cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestLayeredRandomDeterministic(t *testing.T) {
	cfg := LayeredConfig{Layers: 5, Width: 4, MinWork: 1, MaxWork: 100, MinWords: 0, MaxWords: 50, Density: 0.3}
	g1, err := LayeredRandom(rand.New(rand.NewSource(42)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := LayeredRandom(rand.New(rand.NewSource(42)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g1.Summary() != g2.Summary() {
		t.Errorf("same seed, different graphs:\n%s\n%s", g1.Summary(), g2.Summary())
	}
	b1, _ := g1.MarshalJSON()
	b2, _ := g2.MarshalJSON()
	if string(b1) != string(b2) {
		t.Error("same seed produced different JSON")
	}
}

func TestLayeredRandomEveryNonRootHasPredecessor(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := LayeredRandom(rng, LayeredConfig{Layers: 4, Width: 4, MinWork: 1, MaxWork: 5, MinWords: 0, MaxWords: 2, Density: 0.1})
		if err != nil {
			return false
		}
		for _, n := range g.Nodes() {
			// Nodes beyond layer 0 must have at least one predecessor.
			if n.ID[:2] != "n0" && len(g.Predecessors(n.ID)) == 0 {
				return false
			}
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGeneratorsAllValidate(t *testing.T) {
	graphs := []*Graph{
		Chain(10, 3, 1),
		ForkJoin(5, 3, 1),
		Diamond(3, 1),
		OutTree(3, 3, 2, 1),
		InTree(3, 3, 2, 1),
		GE(5, 4, 8, 2),
	}
	if fft, err := FFT(8, 2, 1); err == nil {
		graphs = append(graphs, fft)
	} else {
		t.Error(err)
	}
	for _, g := range graphs {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
		if _, err := g.Flatten(); err != nil {
			t.Errorf("%s flatten: %v", g.Name, err)
		}
	}
}

func TestWavefrontShape(t *testing.T) {
	g, err := Wavefront(3, 4, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 12 || g.NumArcs() != 2*12-3-4 { // n*m cells, (n-1)*m + n*(m-1) arcs
		t.Fatalf("wavefront: %s", g.Summary())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Depth = rows + cols - 1 anti-diagonals; width = min(rows, cols).
	d, _ := g.Depth()
	if d != 6 {
		t.Errorf("depth = %d, want 6", d)
	}
	w, _ := g.Width()
	if w != 3 {
		t.Errorf("width = %d, want 3", w)
	}
	if _, err := Wavefront(0, 3, 1, 1); err == nil {
		t.Error("bad size accepted")
	}
}
