package graph

import (
	"strings"
	"testing"
)

// shardable builds src -> work -> sink where work sums 1..n.
func shardable() *Graph {
	g := New("shardable")
	g.MustAddStorage("N", "n")
	w := g.MustAddTask("work", "big reduction", 1000)
	w.Routine = `total = 0
lo = floor((shard - 1) * n / nshards) + 1
hi = floor(shard * n / nshards)
for i = lo to hi do
  total = total + i
end`
	sink := g.MustAddTask("sink", "consume", 10)
	sink.Routine = "result = total"
	g.MustConnect("N", "work", "n", 1)
	g.MustConnect("work", "sink", "total", 1)
	g.MustAddStorage("OUT", "result")
	g.MustConnect("sink", "OUT", "result", 1)
	return g
}

func TestShardTaskRewrites(t *testing.T) {
	g := shardable()
	// In unsharded form the routine references shard/nshards, so give
	// the unsharded graph its own serial semantics first: skip — shard.
	if err := ShardTask(g, "work", 4, 20, GatherSum(4, "total")); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Shards exist with renamed exports.
	for _, sid := range []NodeID{"work#1", "work#4"} {
		n := g.Node(sid)
		if n == nil {
			t.Fatalf("missing shard %s", sid)
		}
		if !strings.Contains(n.Routine, "shard = ") || !strings.Contains(n.Routine, "nshards = 4") {
			t.Errorf("%s routine lacks shard prologue:\n%s", sid, n.Routine)
		}
	}
	if !strings.Contains(g.Node("work#2").Routine, "total_2 = total") {
		t.Errorf("shard epilogue missing:\n%s", g.Node("work#2").Routine)
	}
	// The gather keeps the original id and feeds the sink.
	gather := g.Node("work")
	if gather.Routine != "total = total_1 + total_2 + total_3 + total_4\n" {
		t.Errorf("gather routine = %q", gather.Routine)
	}
	if preds := g.Predecessors("work"); len(preds) != 4 {
		t.Errorf("gather predecessors = %v", preds)
	}
	if succs := g.Successors("work"); len(succs) != 1 || succs[0] != "sink" {
		t.Errorf("gather successors = %v", succs)
	}
	// Each shard gets the original inputs.
	if preds := g.Predecessors("work#3"); len(preds) != 1 || preds[0] != "N" {
		t.Errorf("shard inputs = %v", preds)
	}
	// Work was divided.
	if g.Node("work#1").Work != 250 {
		t.Errorf("shard work = %d", g.Node("work#1").Work)
	}
}

func TestShardTaskErrors(t *testing.T) {
	g := shardable()
	if err := ShardTask(g, "work", 1, 1, ""); err == nil {
		t.Error("n=1 accepted")
	}
	if err := ShardTask(g, "nosuch", 2, 1, ""); err == nil {
		t.Error("unknown task accepted")
	}
	if err := ShardTask(g, "N", 2, 1, ""); err == nil {
		t.Error("storage node accepted")
	}
}

func TestGatherSum(t *testing.T) {
	got := GatherSum(3, "a", "b")
	want := "a = a_1 + a_2 + a_3\nb = b_1 + b_2 + b_3\n"
	if got != want {
		t.Errorf("GatherSum = %q", got)
	}
}

func TestShardedGraphFlattens(t *testing.T) {
	g := shardable()
	if err := ShardTask(g, "work", 3, 20, GatherSum(3, "total")); err != nil {
		t.Fatal(err)
	}
	flat, err := g.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	// 3 shards + gather + sink.
	if len(flat.Graph.Tasks()) != 5 {
		t.Errorf("flat tasks = %d", len(flat.Graph.Tasks()))
	}
	// All shards read external n.
	readsN := 0
	for _, vars := range flat.ExternalIn {
		for _, v := range vars {
			if v == "n" {
				readsN++
			}
		}
	}
	if readsN != 3 {
		t.Errorf("external n readers = %d", readsN)
	}
}
