package graph

import (
	"errors"
	"fmt"
)

// Validate checks the structural invariants a PITL design must satisfy
// before it can be flattened, scheduled or executed:
//
//   - the graph (and every subgraph, recursively) is acyclic;
//   - input ports have no predecessors, output ports no successors;
//   - every arc into a KindSub node names a variable matching one of
//     the subgraph's input ports, and every arc out matches one of its
//     output ports;
//   - every input port of a subgraph is fed by exactly one enclosing
//     arc, and every output port feeds at least zero (dangling outputs
//     are legal: a subroutine may export values nobody consumes);
//   - storage nodes have at most one writer (single-assignment data
//     cells, the dataflow convention of the paper);
//   - task work is non-negative (enforced at construction, re-checked).
//
// All problems found are joined into one error.
func (g *Graph) Validate() error {
	var errs []error
	if _, err := g.TopoSort(); err != nil {
		errs = append(errs, err)
	}
	for _, n := range g.nodes {
		switch n.Kind {
		case KindInput:
			if len(g.pred[n.ID]) > 0 {
				errs = append(errs, fmt.Errorf("graph %q: input port %q has predecessors", g.Name, n.ID))
			}
		case KindOutput:
			if len(g.succ[n.ID]) > 0 {
				errs = append(errs, fmt.Errorf("graph %q: output port %q has successors", g.Name, n.ID))
			}
		case KindStorage:
			if len(g.pred[n.ID]) > 1 {
				errs = append(errs, fmt.Errorf("graph %q: storage %q has %d writers (max 1)", g.Name, n.ID, len(g.pred[n.ID])))
			}
		case KindTask:
			if n.Work < 0 {
				errs = append(errs, fmt.Errorf("graph %q: task %q has negative work", g.Name, n.ID))
			}
		case KindSub:
			if n.Sub == nil {
				errs = append(errs, fmt.Errorf("graph %q: sub node %q has nil subgraph", g.Name, n.ID))
				continue
			}
			if err := n.Sub.Validate(); err != nil {
				errs = append(errs, fmt.Errorf("in subgraph %q of node %q: %w", n.Sub.Name, n.ID, err))
			}
			errs = append(errs, g.checkSubBinding(n)...)
		}
	}
	return errors.Join(errs...)
}

// checkSubBinding verifies the port binding between enclosing arcs and
// the ports of sub node n's lower-level graph.
func (g *Graph) checkSubBinding(n *Node) []error {
	var errs []error
	inPorts := map[string]bool{}
	outPorts := map[string]bool{}
	for _, sn := range n.Sub.nodes {
		switch sn.Kind {
		case KindInput:
			inPorts[string(sn.ID)] = true
		case KindOutput:
			outPorts[string(sn.ID)] = true
		}
	}
	fedPorts := map[string]int{}
	for _, a := range g.Pred(n.ID) {
		if !inPorts[a.Var] {
			errs = append(errs, fmt.Errorf("graph %q: arc %s->%s carries %q which is not an input port of subgraph %q",
				g.Name, a.From, a.To, a.Var, n.Sub.Name))
			continue
		}
		fedPorts[a.Var]++
	}
	for p := range inPorts {
		switch fedPorts[p] {
		case 0:
			errs = append(errs, fmt.Errorf("graph %q: input port %q of sub node %q is never fed", g.Name, p, n.ID))
		case 1:
			// ok
		default:
			errs = append(errs, fmt.Errorf("graph %q: input port %q of sub node %q fed by %d arcs", g.Name, p, n.ID, fedPorts[p]))
		}
	}
	for _, a := range g.Succ(n.ID) {
		if !outPorts[a.Var] {
			errs = append(errs, fmt.Errorf("graph %q: arc %s->%s carries %q which is not an output port of subgraph %q",
				g.Name, a.From, a.To, a.Var, n.Sub.Name))
		}
	}
	return errs
}

// ValidateFlat checks the extra invariants a flattened graph must
// satisfy: only task nodes remain and at least one task exists.
func (g *Graph) ValidateFlat() error {
	if err := g.Validate(); err != nil {
		return err
	}
	if len(g.nodes) == 0 {
		return fmt.Errorf("graph %q: no nodes", g.Name)
	}
	for _, n := range g.nodes {
		if n.Kind != KindTask {
			return fmt.Errorf("graph %q: node %q has kind %v; flattened graphs contain only tasks", g.Name, n.ID, n.Kind)
		}
	}
	return nil
}
