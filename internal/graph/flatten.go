package graph

import "fmt"

// Flat is the result of flattening a hierarchical PITL design: a graph
// containing only primitive task nodes, plus the binding information the
// executor needs for data that enters or leaves the design through
// storage cells with no producer or no consumer.
type Flat struct {
	// Graph holds only KindTask nodes. Arcs are direct task-to-task
	// dependencies with variable labels and word counts.
	Graph *Graph
	// ExternalIn maps each task to the variables it reads from
	// writer-less storage cells (the design's initial data, e.g. the
	// matrix A and vector b of Figure 1).
	ExternalIn map[NodeID][]string
	// ExternalOut maps each task to the variables it writes into
	// reader-less storage cells (the design's results, e.g. x).
	ExternalOut map[NodeID][]string
}

// Flatten lowers a hierarchical design to a flat task graph:
//
//  1. every KindSub node is spliced in place — its inner nodes appear
//     prefixed with "<subID>/" and its boundary ports are dissolved by
//     rewiring enclosing arcs to the port's inner producers/consumers;
//  2. every storage cell is elided — a cell with a writer becomes
//     direct writer→reader arcs; a cell without a writer marks its
//     readers' variables as external inputs; a cell without readers
//     marks its writer's variable as an external output.
//
// Arc word counts: when an outer arc and an inner arc are fused, the
// inner (more specific) count wins if non-zero, else the outer count.
// The input design is not modified.
func (g *Graph) Flatten() (*Flat, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	work := g.Clone()
	for {
		var sub *Node
		for _, n := range work.nodes {
			if n.Kind == KindSub {
				sub = n
				break
			}
		}
		if sub == nil {
			break
		}
		var err error
		work, err = work.splice(sub)
		if err != nil {
			return nil, err
		}
	}
	flat, err := work.elideStorage()
	if err != nil {
		return nil, err
	}
	if err := flat.Graph.ValidateFlat(); err != nil {
		return nil, err
	}
	return flat, nil
}

// pickWords fuses an inner and an outer word count.
func pickWords(inner, outer int64) int64 {
	if inner > 0 {
		return inner
	}
	return outer
}

// splice returns a new graph in which sub node s has been replaced by
// its (already recursively spliced) subgraph. Inner node ids are
// prefixed with "<s.ID>/".
func (g *Graph) splice(s *Node) (*Graph, error) {
	inner := s.Sub.Clone()
	// Recursively splice nested sub nodes first.
	for {
		var nested *Node
		for _, n := range inner.nodes {
			if n.Kind == KindSub {
				nested = n
				break
			}
		}
		if nested == nil {
			break
		}
		var err error
		inner, err = inner.splice(nested)
		if err != nil {
			return nil, err
		}
	}

	out := New(g.Name)
	prefix := string(s.ID) + "/"

	// Copy all outer nodes except the sub node itself.
	for _, n := range g.nodes {
		if n.ID == s.ID {
			continue
		}
		if _, err := out.add(&Node{ID: n.ID, Label: n.Label, Kind: n.Kind, Work: n.Work, Routine: n.Routine, Sub: n.Sub}); err != nil {
			return nil, err
		}
	}
	// Copy inner non-port nodes with prefixed ids.
	for _, n := range inner.nodes {
		if n.Kind == KindInput || n.Kind == KindOutput {
			continue
		}
		if _, err := out.add(&Node{ID: NodeID(prefix + string(n.ID)), Label: n.Label, Kind: n.Kind, Work: n.Work, Routine: n.Routine, Sub: n.Sub}); err != nil {
			return nil, err
		}
	}

	// Port bindings from the enclosing level.
	inFeed := map[string]Arc{}    // input port var -> the single outer arc feeding it
	outCons := map[string][]Arc{} // output port var -> outer arcs consuming it
	for _, a := range g.Pred(s.ID) {
		inFeed[a.Var] = a
	}
	for _, a := range g.Succ(s.ID) {
		outCons[a.Var] = append(outCons[a.Var], a)
	}
	portKind := map[NodeID]Kind{}
	for _, n := range inner.nodes {
		if n.Kind == KindInput || n.Kind == KindOutput {
			portKind[n.ID] = n.Kind
		}
	}

	// Copy outer arcs not touching the sub node.
	for _, a := range g.arcs {
		if a.From == s.ID || a.To == s.ID {
			continue
		}
		if err := out.Connect(a.From, a.To, a.Var, a.Words); err != nil {
			return nil, err
		}
	}

	// Rewire inner arcs.
	for _, a := range inner.arcs {
		fromKind, fromPort := portKind[a.From]
		toKind, toPort := portKind[a.To]
		switch {
		case fromPort && toPort && fromKind == KindInput && toKind == KindOutput:
			// Pass-through: outer source feeds outer consumers directly.
			feed, ok := inFeed[string(a.From)]
			if !ok {
				return nil, fmt.Errorf("splice %q: input port %q unfed", s.ID, a.From)
			}
			for _, oc := range outCons[string(a.To)] {
				if err := out.Connect(feed.From, oc.To, oc.Var, pickWords(a.Words, oc.Words)); err != nil {
					return nil, err
				}
			}
		case fromPort && fromKind == KindInput:
			feed, ok := inFeed[string(a.From)]
			if !ok {
				return nil, fmt.Errorf("splice %q: input port %q unfed", s.ID, a.From)
			}
			if err := out.Connect(feed.From, NodeID(prefix+string(a.To)), a.Var, pickWords(a.Words, feed.Words)); err != nil {
				return nil, err
			}
		case toPort && toKind == KindOutput:
			for _, oc := range outCons[string(a.To)] {
				if err := out.Connect(NodeID(prefix+string(a.From)), oc.To, oc.Var, pickWords(a.Words, oc.Words)); err != nil {
					return nil, err
				}
			}
		case fromPort || toPort:
			return nil, fmt.Errorf("splice %q: arc %s->%s uses port in unexpected direction", s.ID, a.From, a.To)
		default:
			if err := out.Connect(NodeID(prefix+string(a.From)), NodeID(prefix+string(a.To)), a.Var, a.Words); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// elideStorage removes storage cells (and top-level ports, which behave
// like external storage), leaving a pure task graph plus external
// bindings. Chains of storage cells are collapsed transitively.
func (g *Graph) elideStorage() (*Flat, error) {
	isData := func(n *Node) bool {
		return n.Kind == KindStorage || n.Kind == KindInput || n.Kind == KindOutput
	}
	// For each data node, resolve the ultimate task writer by walking
	// back through data-node chains.
	type source struct {
		task  NodeID // writer task, or "" if external
		words int64
		ok    bool
	}
	memo := map[NodeID]source{}
	var resolve func(id NodeID, depth int) (source, error)
	resolve = func(id NodeID, depth int) (source, error) {
		if s, done := memo[id]; done {
			return s, nil
		}
		if depth > g.Len() {
			return source{}, fmt.Errorf("graph %q: storage chain too deep at %q", g.Name, id)
		}
		preds := g.Pred(id)
		if len(preds) == 0 {
			s := source{ok: true} // external input
			memo[id] = s
			return s, nil
		}
		a := preds[0] // validated: storage has at most one writer
		from := g.index[a.From]
		if isData(from) {
			s, err := resolve(from.ID, depth+1)
			if err != nil {
				return source{}, err
			}
			if s.words == 0 {
				s.words = a.Words
			}
			memo[id] = s
			return s, nil
		}
		s := source{task: from.ID, words: a.Words, ok: true}
		memo[id] = s
		return s, nil
	}

	out := New(g.Name)
	flat := &Flat{Graph: out, ExternalIn: map[NodeID][]string{}, ExternalOut: map[NodeID][]string{}}
	for _, n := range g.nodes {
		if n.Kind == KindTask {
			if _, err := out.add(&Node{ID: n.ID, Label: n.Label, Kind: KindTask, Work: n.Work, Routine: n.Routine}); err != nil {
				return nil, err
			}
		} else if !isData(n) {
			return nil, fmt.Errorf("graph %q: unexpected %v node %q during storage elision", g.Name, n.Kind, n.ID)
		}
	}

	dataName := func(n *Node) string {
		if n.Label != "" {
			return n.Label
		}
		return string(n.ID)
	}

	for _, a := range g.arcs {
		from, to := g.index[a.From], g.index[a.To]
		switch {
		case from.Kind == KindTask && to.Kind == KindTask:
			if err := out.Connect(a.From, a.To, a.Var, a.Words); err != nil {
				return nil, err
			}
		case from.Kind == KindTask && isData(to):
			// Writer side: pair with each ultimate task reader.
			readers, err := g.dataReaders(to.ID, isData, 0)
			if err != nil {
				return nil, err
			}
			name := a.Var
			if name == "" {
				name = dataName(to)
			}
			if len(readers) == 0 {
				flat.ExternalOut[a.From] = appendUnique(flat.ExternalOut[a.From], name)
			}
			for _, r := range readers {
				if err := out.Connect(a.From, r.task, name, pickWords(r.words, a.Words)); err != nil {
					return nil, err
				}
			}
		case isData(from) && to.Kind == KindTask:
			// Reader side: only record externals here; written cells
			// were handled from the writer side.
			src, err := resolve(from.ID, 0)
			if err != nil {
				return nil, err
			}
			if src.task == "" {
				name := a.Var
				if name == "" {
					name = dataName(from)
				}
				flat.ExternalIn[a.To] = appendUnique(flat.ExternalIn[a.To], name)
			}
		case isData(from) && isData(to):
			// Handled transitively by resolve/dataReaders.
		}
	}
	return flat, nil
}

type readerRef struct {
	task  NodeID
	words int64
}

// dataReaders returns the ultimate task readers reachable from data
// node id through data-node chains, with the word count of the final
// hop into each task.
func (g *Graph) dataReaders(id NodeID, isData func(*Node) bool, depth int) ([]readerRef, error) {
	if depth > g.Len() {
		return nil, fmt.Errorf("graph %q: storage chain too deep at %q", g.Name, id)
	}
	var out []readerRef
	for _, a := range g.Succ(id) {
		to := g.index[a.To]
		if isData(to) {
			more, err := g.dataReaders(to.ID, isData, depth+1)
			if err != nil {
				return nil, err
			}
			out = append(out, more...)
		} else {
			out = append(out, readerRef{task: a.To, words: a.Words})
		}
	}
	return out, nil
}

func appendUnique(s []string, v string) []string {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}
