package graph

import (
	"fmt"
	"sort"
)

// TopoSort returns the node ids in a topological order (Kahn's
// algorithm, stable with respect to insertion order). It returns an
// error naming a node on a cycle if the graph is cyclic.
func (g *Graph) TopoSort() ([]NodeID, error) {
	indeg := make(map[NodeID]int, len(g.nodes))
	for _, n := range g.nodes {
		indeg[n.ID] = len(g.pred[n.ID])
	}
	// Ready queue ordered by insertion position for determinism.
	pos := make(map[NodeID]int, len(g.nodes))
	for i, n := range g.nodes {
		pos[n.ID] = i
	}
	var ready []NodeID
	for _, n := range g.nodes {
		if indeg[n.ID] == 0 {
			ready = append(ready, n.ID)
		}
	}
	order := make([]NodeID, 0, len(g.nodes))
	for len(ready) > 0 {
		// Pop the earliest-inserted ready node.
		best := 0
		for i := 1; i < len(ready); i++ {
			if pos[ready[i]] < pos[ready[best]] {
				best = i
			}
		}
		id := ready[best]
		ready = append(ready[:best], ready[best+1:]...)
		order = append(order, id)
		for _, ai := range g.succ[id] {
			t := g.arcs[ai].To
			indeg[t]--
			if indeg[t] == 0 {
				ready = append(ready, t)
			}
		}
	}
	if len(order) != len(g.nodes) {
		for _, n := range g.nodes {
			if indeg[n.ID] > 0 {
				return nil, fmt.Errorf("graph %q: cycle involving node %q", g.Name, n.ID)
			}
		}
	}
	return order, nil
}

// Levels holds the classic list-scheduling priority metrics of a task
// graph, computed with communication included (arc weight = Words) but
// in abstract units: work counts for nodes, word counts for arcs. A
// scheduler converts these to time with its machine model; for
// prioritisation the abstract values suffice.
type Levels struct {
	// TLevel[n] is the length of the longest path from any entry node
	// to n, excluding n's own work ("earliest possible start" in
	// abstract units, also called the top level).
	TLevel map[NodeID]int64
	// BLevel[n] is the length of the longest path from n to any exit
	// node, including n's own work (the bottom level).
	BLevel map[NodeID]int64
	// SLevel[n] is the static level: BLevel computed ignoring arc
	// weights (the HLFET priority of Adam, Chandy & Dickson).
	SLevel map[NodeID]int64
	// Order is a topological order of the graph.
	Order []NodeID
}

// ComputeLevels computes t-levels, b-levels and static levels for the
// graph. commScale multiplies arc Words when mixing communication into
// path lengths; pass 1 for the abstract default or a machine-derived
// ratio to bias priorities toward a particular cost model.
func (g *Graph) ComputeLevels(commScale int64) (*Levels, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	lv := &Levels{
		TLevel: make(map[NodeID]int64, len(order)),
		BLevel: make(map[NodeID]int64, len(order)),
		SLevel: make(map[NodeID]int64, len(order)),
		Order:  order,
	}
	for _, id := range order {
		var t int64
		for _, a := range g.Pred(id) {
			p := g.index[a.From]
			cand := lv.TLevel[a.From] + p.Work + a.Words*commScale
			if cand > t {
				t = cand
			}
		}
		lv.TLevel[id] = t
	}
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		n := g.index[id]
		var b, s int64
		for _, a := range g.Succ(id) {
			if c := lv.BLevel[a.To] + a.Words*commScale; c > b {
				b = c
			}
			if c := lv.SLevel[a.To]; c > s {
				s = c
			}
		}
		lv.BLevel[id] = b + n.Work
		lv.SLevel[id] = s + n.Work
	}
	return lv, nil
}

// CriticalPath returns the nodes on a longest entry-to-exit path
// (counting node work plus commScale-weighted arc words) and its
// length. For an empty graph it returns nil, 0.
func (g *Graph) CriticalPath(commScale int64) ([]NodeID, int64, error) {
	lv, err := g.ComputeLevels(commScale)
	if err != nil {
		return nil, 0, err
	}
	if len(lv.Order) == 0 {
		return nil, 0, nil
	}
	// The critical path length is max over nodes of TLevel+BLevel;
	// start from an entry node achieving it and walk greedily.
	var best NodeID
	var bestLen int64 = -1
	for _, id := range lv.Order {
		if len(g.pred[id]) > 0 {
			continue
		}
		if l := lv.BLevel[id]; l > bestLen {
			bestLen = l
			best = id
		}
	}
	path := []NodeID{best}
	cur := best
	for {
		var next NodeID
		found := false
		for _, a := range g.Succ(cur) {
			want := lv.BLevel[cur] - g.index[cur].Work - a.Words*commScale
			if lv.BLevel[a.To] == want && want >= 0 {
				next = a.To
				found = true
				break
			}
		}
		if !found {
			break
		}
		path = append(path, next)
		cur = next
	}
	return path, bestLen, nil
}

// Width returns the maximum antichain size as approximated by the
// largest number of nodes sharing a depth level (longest-path depth,
// unit arc weights). It bounds attainable parallelism.
func (g *Graph) Width() (int, error) {
	order, err := g.TopoSort()
	if err != nil {
		return 0, err
	}
	depth := make(map[NodeID]int, len(order))
	for _, id := range order {
		d := 0
		for _, a := range g.Pred(id) {
			if depth[a.From]+1 > d {
				d = depth[a.From] + 1
			}
		}
		depth[id] = d
	}
	count := map[int]int{}
	w := 0
	for _, d := range depth {
		count[d]++
		if count[d] > w {
			w = count[d]
		}
	}
	return w, nil
}

// Depth returns the number of nodes on the longest path (unit weights),
// i.e. the minimum number of sequential steps.
func (g *Graph) Depth() (int, error) {
	order, err := g.TopoSort()
	if err != nil {
		return 0, err
	}
	depth := make(map[NodeID]int, len(order))
	max := 0
	for _, id := range order {
		d := 1
		for _, a := range g.Pred(id) {
			if depth[a.From]+1 > d {
				d = depth[a.From] + 1
			}
		}
		depth[id] = d
		if d > max {
			max = d
		}
	}
	return max, nil
}

// Ancestors returns all transitive predecessors of id, sorted.
func (g *Graph) Ancestors(id NodeID) []NodeID {
	seen := map[NodeID]bool{}
	var walk func(NodeID)
	walk = func(n NodeID) {
		for _, a := range g.Pred(n) {
			if !seen[a.From] {
				seen[a.From] = true
				walk(a.From)
			}
		}
	}
	walk(id)
	out := make([]NodeID, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Descendants returns all transitive successors of id, sorted.
func (g *Graph) Descendants(id NodeID) []NodeID {
	seen := map[NodeID]bool{}
	var walk func(NodeID)
	walk = func(n NodeID) {
		for _, a := range g.Succ(n) {
			if !seen[a.To] {
				seen[a.To] = true
				walk(a.To)
			}
		}
	}
	walk(id)
	out := make([]NodeID, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
