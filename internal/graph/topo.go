package graph

import (
	"fmt"
	"sort"
)

// TopoSort returns the node ids in a topological order (Kahn's
// algorithm, stable with respect to insertion order: among ready nodes
// the earliest-inserted one is emitted first). It returns an error
// naming a node on a cycle if the graph is cyclic.
func (g *Graph) TopoSort() ([]NodeID, error) {
	n := len(g.nodes)
	pos := make(map[NodeID]int, n)
	for i, nd := range g.nodes {
		pos[nd.ID] = i
	}
	indeg := make([]int, n)
	for i, nd := range g.nodes {
		indeg[i] = len(g.pred[nd.ID])
	}
	// Min-heap of insertion positions: pops the earliest-inserted ready
	// node in O(log n) instead of a linear scan of the ready pool.
	ready := make(minIntHeap, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready.push(i)
		}
	}
	order := make([]NodeID, 0, n)
	for len(ready) > 0 {
		i := ready.pop()
		id := g.nodes[i].ID
		order = append(order, id)
		for _, a := range g.succ[id] {
			ti := pos[a.To]
			indeg[ti]--
			if indeg[ti] == 0 {
				ready.push(ti)
			}
		}
	}
	if len(order) != n {
		for i, nd := range g.nodes {
			if indeg[i] > 0 {
				return nil, fmt.Errorf("graph %q: cycle involving node %q", g.Name, nd.ID)
			}
		}
	}
	return order, nil
}

// minIntHeap is a plain binary min-heap over ints, avoiding the
// interface boxing of container/heap on this hot path.
type minIntHeap []int

func (h *minIntHeap) push(x int) {
	*h = append(*h, x)
	s := *h
	for i := len(s) - 1; i > 0; {
		p := (i - 1) / 2
		if s[p] <= s[i] {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

func (h *minIntHeap) pop() int {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	*h = s[:last]
	s = s[:last]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(s) && s[l] < s[m] {
			m = l
		}
		if r < len(s) && s[r] < s[m] {
			m = r
		}
		if m == i {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top
}

// Levels holds the classic list-scheduling priority metrics of a task
// graph, computed with communication included (arc weight = Words) but
// in abstract units: work counts for nodes, word counts for arcs. A
// scheduler converts these to time with its machine model; for
// prioritisation the abstract values suffice.
type Levels struct {
	// TLevel[n] is the length of the longest path from any entry node
	// to n, excluding n's own work ("earliest possible start" in
	// abstract units, also called the top level).
	TLevel map[NodeID]int64
	// BLevel[n] is the length of the longest path from n to any exit
	// node, including n's own work (the bottom level).
	BLevel map[NodeID]int64
	// SLevel[n] is the static level: BLevel computed ignoring arc
	// weights (the HLFET priority of Adam, Chandy & Dickson).
	SLevel map[NodeID]int64
	// Order is a topological order of the graph.
	Order []NodeID
}

// ComputeLevels computes t-levels, b-levels and static levels for the
// graph. commScale multiplies arc Words when mixing communication into
// path lengths; pass 1 for the abstract default or a machine-derived
// ratio to bias priorities toward a particular cost model.
func (g *Graph) ComputeLevels(commScale int64) (*Levels, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	lv := &Levels{
		TLevel: make(map[NodeID]int64, len(order)),
		BLevel: make(map[NodeID]int64, len(order)),
		SLevel: make(map[NodeID]int64, len(order)),
		Order:  order,
	}
	for _, id := range order {
		var t int64
		for _, a := range g.pred[id] {
			p := g.index[a.From]
			cand := lv.TLevel[a.From] + p.Work + a.Words*commScale
			if cand > t {
				t = cand
			}
		}
		lv.TLevel[id] = t
	}
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		n := g.index[id]
		var b, s int64
		for _, a := range g.succ[id] {
			if c := lv.BLevel[a.To] + a.Words*commScale; c > b {
				b = c
			}
			if c := lv.SLevel[a.To]; c > s {
				s = c
			}
		}
		lv.BLevel[id] = b + n.Work
		lv.SLevel[id] = s + n.Work
	}
	return lv, nil
}

// CriticalPath returns the nodes on a longest entry-to-exit path
// (counting node work plus commScale-weighted arc words) and its
// length. For an empty graph it returns nil, 0.
func (g *Graph) CriticalPath(commScale int64) ([]NodeID, int64, error) {
	lv, err := g.ComputeLevels(commScale)
	if err != nil {
		return nil, 0, err
	}
	if len(lv.Order) == 0 {
		return nil, 0, nil
	}
	// The critical path length is max over nodes of TLevel+BLevel;
	// start from an entry node achieving it and walk greedily.
	var best NodeID
	var bestLen int64 = -1
	for _, id := range lv.Order {
		if len(g.pred[id]) > 0 {
			continue
		}
		if l := lv.BLevel[id]; l > bestLen {
			bestLen = l
			best = id
		}
	}
	path := []NodeID{best}
	cur := best
	for {
		var next NodeID
		found := false
		for _, a := range g.succ[cur] {
			want := lv.BLevel[cur] - g.index[cur].Work - a.Words*commScale
			if lv.BLevel[a.To] == want && want >= 0 {
				next = a.To
				found = true
				break
			}
		}
		if !found {
			break
		}
		path = append(path, next)
		cur = next
	}
	return path, bestLen, nil
}

// Width returns the maximum antichain size as approximated by the
// largest number of nodes sharing a depth level (longest-path depth,
// unit arc weights). It bounds attainable parallelism.
func (g *Graph) Width() (int, error) {
	order, err := g.TopoSort()
	if err != nil {
		return 0, err
	}
	depth := make(map[NodeID]int, len(order))
	for _, id := range order {
		d := 0
		for _, a := range g.pred[id] {
			if depth[a.From]+1 > d {
				d = depth[a.From] + 1
			}
		}
		depth[id] = d
	}
	count := map[int]int{}
	w := 0
	for _, d := range depth {
		count[d]++
		if count[d] > w {
			w = count[d]
		}
	}
	return w, nil
}

// Depth returns the number of nodes on the longest path (unit weights),
// i.e. the minimum number of sequential steps.
func (g *Graph) Depth() (int, error) {
	order, err := g.TopoSort()
	if err != nil {
		return 0, err
	}
	depth := make(map[NodeID]int, len(order))
	max := 0
	for _, id := range order {
		d := 1
		for _, a := range g.pred[id] {
			if depth[a.From]+1 > d {
				d = depth[a.From] + 1
			}
		}
		depth[id] = d
		if d > max {
			max = d
		}
	}
	return max, nil
}

// Ancestors returns all transitive predecessors of id, sorted.
func (g *Graph) Ancestors(id NodeID) []NodeID {
	seen := map[NodeID]bool{}
	var walk func(NodeID)
	walk = func(n NodeID) {
		for _, a := range g.pred[n] {
			if !seen[a.From] {
				seen[a.From] = true
				walk(a.From)
			}
		}
	}
	walk(id)
	out := make([]NodeID, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Descendants returns all transitive successors of id, sorted.
func (g *Graph) Descendants(id NodeID) []NodeID {
	seen := map[NodeID]bool{}
	var walk func(NodeID)
	walk = func(n NodeID) {
		for _, a := range g.succ[n] {
			if !seen[a.To] {
				seen[a.To] = true
				walk(a.To)
			}
		}
	}
	walk(id)
	out := make([]NodeID, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
