package graph

import (
	"strings"
	"testing"
)

func TestAddTaskAndLookup(t *testing.T) {
	g := New("g")
	n, err := g.AddTask("a", "task a", 10)
	if err != nil {
		t.Fatalf("AddTask: %v", err)
	}
	if n.ID != "a" || n.Kind != KindTask || n.Work != 10 {
		t.Errorf("node fields wrong: %+v", n)
	}
	if got := g.Node("a"); got != n {
		t.Errorf("Node(a) = %v, want %v", got, n)
	}
	if got := g.Node("missing"); got != nil {
		t.Errorf("Node(missing) = %v, want nil", got)
	}
	if g.Len() != 1 {
		t.Errorf("Len = %d, want 1", g.Len())
	}
}

func TestAddTaskDuplicateID(t *testing.T) {
	g := New("g")
	g.MustAddTask("a", "", 1)
	if _, err := g.AddTask("a", "", 2); err == nil {
		t.Fatal("duplicate id accepted")
	}
}

func TestAddTaskEmptyID(t *testing.T) {
	g := New("g")
	if _, err := g.AddTask("", "", 1); err == nil {
		t.Fatal("empty id accepted")
	}
}

func TestAddTaskNegativeWork(t *testing.T) {
	g := New("g")
	if _, err := g.AddTask("a", "", -1); err == nil {
		t.Fatal("negative work accepted")
	}
}

func TestConnectErrors(t *testing.T) {
	g := New("g")
	g.MustAddTask("a", "", 1)
	g.MustAddTask("b", "", 1)
	if err := g.Connect("missing", "b", "v", 1); err == nil {
		t.Error("missing source accepted")
	}
	if err := g.Connect("a", "missing", "v", 1); err == nil {
		t.Error("missing target accepted")
	}
	if err := g.Connect("a", "a", "v", 1); err == nil {
		t.Error("self arc accepted")
	}
	if err := g.Connect("a", "b", "v", -5); err == nil {
		t.Error("negative words accepted")
	}
	if err := g.Connect("a", "b", "v", 3); err != nil {
		t.Errorf("valid arc rejected: %v", err)
	}
}

func TestSuccPredNeighbors(t *testing.T) {
	g := Diamond(5, 2)
	succ := g.Successors("a")
	if len(succ) != 2 || succ[0] != "b" || succ[1] != "c" {
		t.Errorf("Successors(a) = %v", succ)
	}
	pred := g.Predecessors("d")
	if len(pred) != 2 || pred[0] != "b" || pred[1] != "c" {
		t.Errorf("Predecessors(d) = %v", pred)
	}
	if arcs := g.Succ("a"); len(arcs) != 2 || arcs[0].Var != "ab" {
		t.Errorf("Succ(a) = %v", arcs)
	}
	if arcs := g.Pred("a"); len(arcs) != 0 {
		t.Errorf("Pred(a) = %v, want empty", arcs)
	}
}

func TestEntriesExits(t *testing.T) {
	g := Diamond(1, 1)
	ent := g.Entries()
	if len(ent) != 1 || ent[0].ID != "a" {
		t.Errorf("Entries = %v", ent)
	}
	ex := g.Exits()
	if len(ex) != 1 || ex[0].ID != "d" {
		t.Errorf("Exits = %v", ex)
	}
}

func TestTotals(t *testing.T) {
	g := Diamond(5, 3)
	if w := g.TotalWork(); w != 20 {
		t.Errorf("TotalWork = %d, want 20", w)
	}
	if w := g.TotalWords(); w != 12 {
		t.Errorf("TotalWords = %d, want 12", w)
	}
}

func TestCloneIsDeepForStructure(t *testing.T) {
	sub := New("sub")
	sub.MustAddInput("x")
	sub.MustAddTask("t", "", 4)
	sub.MustAddOutput("y")
	sub.MustConnect("x", "t", "x", 1)
	sub.MustConnect("t", "y", "y", 1)

	g := New("outer")
	g.MustAddTask("a", "", 2)
	g.MustAddSub("s", "sub call", sub)
	g.MustConnect("a", "s", "x", 1)

	c := g.Clone()
	// Mutating the clone must not affect the original.
	c.MustAddTask("extra", "", 1)
	c.Node("s").Sub.MustAddTask("inner-extra", "", 1)
	if g.Len() != 2 {
		t.Errorf("original node count changed: %d", g.Len())
	}
	if g.Node("s").Sub.Len() != 3 {
		t.Errorf("original subgraph changed: %d nodes", g.Node("s").Sub.Len())
	}
	if c.Node("s").Sub.Len() != 4 {
		t.Errorf("clone subgraph not mutated: %d nodes", c.Node("s").Sub.Len())
	}
}

func TestTasksFilters(t *testing.T) {
	g := New("g")
	g.MustAddTask("t1", "", 1)
	g.MustAddStorage("s1", "data")
	g.MustAddTask("t2", "", 1)
	ts := g.Tasks()
	if len(ts) != 2 || ts[0].ID != "t1" || ts[1].ID != "t2" {
		t.Errorf("Tasks = %v", ts)
	}
	if !ts[0].IsTask() {
		t.Error("IsTask false for task")
	}
	if g.Node("s1").IsTask() {
		t.Error("IsTask true for storage")
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindTask: "task", KindStorage: "storage", KindSub: "sub",
		KindInput: "input", KindOutput: "output", Kind(99): "kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestSummaryMentionsShape(t *testing.T) {
	s := Diamond(5, 3).Summary()
	for _, want := range []string{"diamond", "4 nodes", "4 arcs", "width 2", "depth 3"} {
		if !strings.Contains(s, want) {
			t.Errorf("Summary %q missing %q", s, want)
		}
	}
}
