package graph

import (
	"fmt"
	"math/rand"
)

// This file provides deterministic generators for the task-graph shapes
// used throughout the benchmark harness: the classic structured graphs
// of the scheduling literature (chains, trees, diamonds, FFT
// butterflies, Gaussian elimination) plus seeded random layered DAGs.

// Chain returns a linear chain of n tasks t0 -> t1 -> ... each with the
// given work, connected by arcs of the given word count.
func Chain(n int, work, words int64) *Graph {
	g := New(fmt.Sprintf("chain-%d", n))
	for i := 0; i < n; i++ {
		g.MustAddTask(NodeID(fmt.Sprintf("t%d", i)), fmt.Sprintf("stage %d", i), work)
	}
	for i := 1; i < n; i++ {
		g.MustConnect(NodeID(fmt.Sprintf("t%d", i-1)), NodeID(fmt.Sprintf("t%d", i)), fmt.Sprintf("v%d", i), words)
	}
	return g
}

// ForkJoin returns a fan-out/fan-in graph: one source task, width
// parallel middle tasks, one sink task.
func ForkJoin(width int, work, words int64) *Graph {
	g := New(fmt.Sprintf("forkjoin-%d", width))
	g.MustAddTask("src", "scatter", work)
	g.MustAddTask("snk", "gather", work)
	for i := 0; i < width; i++ {
		id := NodeID(fmt.Sprintf("w%d", i))
		g.MustAddTask(id, fmt.Sprintf("worker %d", i), work)
		g.MustConnect("src", id, fmt.Sprintf("in%d", i), words)
		g.MustConnect(id, "snk", fmt.Sprintf("out%d", i), words)
	}
	return g
}

// Diamond returns the 4-node diamond: a -> {b, c} -> d.
func Diamond(work, words int64) *Graph {
	g := New("diamond")
	g.MustAddTask("a", "top", work)
	g.MustAddTask("b", "left", work)
	g.MustAddTask("c", "right", work)
	g.MustAddTask("d", "bottom", work)
	g.MustConnect("a", "b", "ab", words)
	g.MustConnect("a", "c", "ac", words)
	g.MustConnect("b", "d", "bd", words)
	g.MustConnect("c", "d", "cd", words)
	return g
}

// OutTree returns a complete out-tree (root fans out) with the given
// branching factor and depth levels. Depth 1 is a single root.
func OutTree(branch, depth int, work, words int64) *Graph {
	g := New(fmt.Sprintf("outtree-b%d-d%d", branch, depth))
	var build func(id string, level int)
	build = func(id string, level int) {
		g.MustAddTask(NodeID(id), id, work)
		if level+1 >= depth {
			return
		}
		for c := 0; c < branch; c++ {
			child := fmt.Sprintf("%s.%d", id, c)
			build(child, level+1)
			g.MustConnect(NodeID(id), NodeID(child), "d"+child, words)
		}
	}
	build("r", 0)
	return g
}

// InTree returns a complete in-tree (leaves reduce toward a root),
// the mirror image of OutTree.
func InTree(branch, depth int, work, words int64) *Graph {
	g := New(fmt.Sprintf("intree-b%d-d%d", branch, depth))
	var build func(id string, level int)
	build = func(id string, level int) {
		g.MustAddTask(NodeID(id), id, work)
		if level+1 >= depth {
			return
		}
		for c := 0; c < branch; c++ {
			child := fmt.Sprintf("%s.%d", id, c)
			build(child, level+1)
			g.MustConnect(NodeID(child), NodeID(id), "d"+child, words)
		}
	}
	build("r", 0)
	return g
}

// FFT returns the task graph of an n-point (n a power of two)
// Cooley–Tukey FFT: log2(n) butterfly ranks of n tasks each.
func FFT(n int, work, words int64) (*Graph, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("FFT size %d is not a power of two >= 2", n)
	}
	g := New(fmt.Sprintf("fft-%d", n))
	ranks := 0
	for m := n; m > 1; m >>= 1 {
		ranks++
	}
	id := func(r, i int) NodeID { return NodeID(fmt.Sprintf("r%d.%d", r, i)) }
	for r := 0; r <= ranks; r++ {
		for i := 0; i < n; i++ {
			g.MustAddTask(id(r, i), fmt.Sprintf("bfly r%d i%d", r, i), work)
		}
	}
	for r := 1; r <= ranks; r++ {
		span := n >> r
		for i := 0; i < n; i++ {
			partner := i ^ span
			g.MustConnect(id(r-1, i), id(r, i), fmt.Sprintf("s%d.%d", r, i), words)
			g.MustConnect(id(r-1, partner), id(r, i), fmt.Sprintf("x%d.%d", r, i), words)
		}
	}
	return g, nil
}

// GE returns the task graph of Gaussian elimination on an n×n system:
// for each pivot column k there is a pivot task followed by (n-k-1)
// row-update tasks, each depending on the pivot and on the previous
// update of its row. This is the n-generalisation of the paper's
// Figure 1 LU example.
func GE(n int, pivotWork, updateWork, words int64) *Graph {
	g := New(fmt.Sprintf("ge-%d", n))
	piv := func(k int) NodeID { return NodeID(fmt.Sprintf("p%d", k)) }
	upd := func(k, i int) NodeID { return NodeID(fmt.Sprintf("u%d.%d", k, i)) }
	for k := 0; k < n-1; k++ {
		g.MustAddTask(piv(k), fmt.Sprintf("pivot %d", k), pivotWork)
		if k > 0 {
			// Pivot k needs row k as updated in step k-1.
			g.MustConnect(upd(k-1, k), piv(k), fmt.Sprintf("row%d", k), words)
		}
		for i := k + 1; i < n; i++ {
			g.MustAddTask(upd(k, i), fmt.Sprintf("update %d,%d", k, i), updateWork)
			g.MustConnect(piv(k), upd(k, i), fmt.Sprintf("l%d.%d", i, k), words)
			if k > 0 {
				g.MustConnect(upd(k-1, i), upd(k, i), fmt.Sprintf("row%d.%d", k, i), words)
			}
		}
	}
	return g
}

// Wavefront returns the task graph of a rows×cols dynamic-programming
// table sweep: cell (i,j) depends on its north and west neighbours, so
// execution proceeds in anti-diagonal waves — the dependency pattern of
// sequence alignment, shortest paths and triangular solves.
func Wavefront(rows, cols int, work, words int64) (*Graph, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("wavefront %dx%d: dimensions must be positive", rows, cols)
	}
	g := New(fmt.Sprintf("wavefront-%dx%d", rows, cols))
	id := func(i, j int) NodeID { return NodeID(fmt.Sprintf("c%d.%d", i, j)) }
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			g.MustAddTask(id(i, j), fmt.Sprintf("cell %d,%d", i, j), work)
			if i > 0 {
				g.MustConnect(id(i-1, j), id(i, j), fmt.Sprintf("n%d.%d", i, j), words)
			}
			if j > 0 {
				g.MustConnect(id(i, j-1), id(i, j), fmt.Sprintf("w%d.%d", i, j), words)
			}
		}
	}
	return g, nil
}

// LayeredConfig controls LayeredRandom generation.
type LayeredConfig struct {
	Layers   int   // number of layers (>= 1)
	Width    int   // tasks per layer (>= 1)
	MinWork  int64 // work drawn uniformly from [MinWork, MaxWork]
	MaxWork  int64
	MinWords int64 // arc words drawn uniformly from [MinWords, MaxWords]
	MaxWords int64
	Density  float64 // probability of an arc between adjacent-layer pairs
}

// LayeredRandom returns a random layered DAG: Width tasks in each of
// Layers layers; each task (after layer 0) is guaranteed at least one
// predecessor in the previous layer so the graph has no stray roots,
// and additional adjacent-layer arcs appear with probability Density.
// The generator is fully determined by rng.
func LayeredRandom(rng *rand.Rand, cfg LayeredConfig) (*Graph, error) {
	if cfg.Layers < 1 || cfg.Width < 1 {
		return nil, fmt.Errorf("layered random graph needs Layers>=1 and Width>=1, got %d/%d", cfg.Layers, cfg.Width)
	}
	if cfg.MinWork < 0 || cfg.MaxWork < cfg.MinWork || cfg.MinWords < 0 || cfg.MaxWords < cfg.MinWords {
		return nil, fmt.Errorf("invalid work/words ranges %+v", cfg)
	}
	g := New(fmt.Sprintf("rand-L%dxW%d", cfg.Layers, cfg.Width))
	span := func(lo, hi int64) int64 {
		if hi == lo {
			return lo
		}
		return lo + rng.Int63n(hi-lo+1)
	}
	id := func(l, i int) NodeID { return NodeID(fmt.Sprintf("n%d.%d", l, i)) }
	for l := 0; l < cfg.Layers; l++ {
		for i := 0; i < cfg.Width; i++ {
			g.MustAddTask(id(l, i), fmt.Sprintf("layer %d task %d", l, i), span(cfg.MinWork, cfg.MaxWork))
		}
	}
	for l := 1; l < cfg.Layers; l++ {
		for i := 0; i < cfg.Width; i++ {
			connected := false
			for p := 0; p < cfg.Width; p++ {
				if rng.Float64() < cfg.Density {
					g.MustConnect(id(l-1, p), id(l, i), fmt.Sprintf("v%d.%d.%d", l, i, p), span(cfg.MinWords, cfg.MaxWords))
					connected = true
				}
			}
			if !connected {
				p := rng.Intn(cfg.Width)
				g.MustConnect(id(l-1, p), id(l, i), fmt.Sprintf("v%d.%d.%d", l, i, p), span(cfg.MinWords, cfg.MaxWords))
			}
		}
	}
	return g, nil
}
