package graph

import (
	"encoding/json"
	"fmt"
)

// jsonGraph is the wire form of a Graph.
type jsonGraph struct {
	Name  string     `json:"name"`
	Nodes []jsonNode `json:"nodes"`
	Arcs  []jsonArc  `json:"arcs"`
}

type jsonNode struct {
	ID      string     `json:"id"`
	Label   string     `json:"label,omitempty"`
	Kind    string     `json:"kind"`
	Work    int64      `json:"work,omitempty"`
	Routine string     `json:"routine,omitempty"`
	Sub     *jsonGraph `json:"sub,omitempty"`
}

type jsonArc struct {
	From  string `json:"from"`
	To    string `json:"to"`
	Var   string `json:"var,omitempty"`
	Words int64  `json:"words,omitempty"`
}

var kindNames = map[Kind]string{
	KindTask:    "task",
	KindStorage: "storage",
	KindSub:     "sub",
	KindInput:   "input",
	KindOutput:  "output",
}

var kindValues = map[string]Kind{
	"task":    KindTask,
	"storage": KindStorage,
	"sub":     KindSub,
	"input":   KindInput,
	"output":  KindOutput,
}

func (g *Graph) toJSON() *jsonGraph {
	jg := &jsonGraph{Name: g.Name}
	for _, n := range g.nodes {
		jn := jsonNode{ID: string(n.ID), Label: n.Label, Kind: kindNames[n.Kind], Work: n.Work, Routine: n.Routine}
		if n.Sub != nil {
			jn.Sub = n.Sub.toJSON()
		}
		jg.Nodes = append(jg.Nodes, jn)
	}
	for _, a := range g.arcs {
		jg.Arcs = append(jg.Arcs, jsonArc{From: string(a.From), To: string(a.To), Var: a.Var, Words: a.Words})
	}
	return jg
}

func fromJSON(jg *jsonGraph) (*Graph, error) {
	g := New(jg.Name)
	for _, jn := range jg.Nodes {
		kind, ok := kindValues[jn.Kind]
		if !ok {
			return nil, fmt.Errorf("graph %q: unknown node kind %q", jg.Name, jn.Kind)
		}
		n := &Node{ID: NodeID(jn.ID), Label: jn.Label, Kind: kind, Work: jn.Work, Routine: jn.Routine}
		if jn.Sub != nil {
			sub, err := fromJSON(jn.Sub)
			if err != nil {
				return nil, err
			}
			n.Sub = sub
		} else if kind == KindSub {
			return nil, fmt.Errorf("graph %q: sub node %q missing subgraph", jg.Name, jn.ID)
		}
		if _, err := g.add(n); err != nil {
			return nil, err
		}
	}
	for _, ja := range jg.Arcs {
		if err := g.Connect(NodeID(ja.From), NodeID(ja.To), ja.Var, ja.Words); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// MarshalJSON implements json.Marshaler.
func (g *Graph) MarshalJSON() ([]byte, error) {
	return json.Marshal(g.toJSON())
}

// UnmarshalJSON implements json.Unmarshaler. The receiver is replaced
// wholesale by the decoded graph.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return err
	}
	ng, err := fromJSON(&jg)
	if err != nil {
		return err
	}
	*g = *ng
	return nil
}
