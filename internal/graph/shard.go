package graph

import "fmt"

// ShardTask implements the paper's future-work extension toward
// fine-grained parallelism: "machine-independent data-parallel
// constructs". It rewrites one primitive task into n data-parallel
// shards plus a gather task, entirely at the graph level, so
// scheduling, simulation, execution and code generation all apply
// unchanged.
//
// Each shard receives copies of the original incoming arcs and runs
// the original routine with two extra variables prepended: shard (its
// 1-based index) and nshards. Whatever output variables the original
// task fed to its successors are re-exported by shard k under the name
// "<var>_k" and sent to the gather task, whose routine (supplied by
// the caller) must combine v_1..v_n into each original variable v.
// The gather task inherits the original task's outgoing arcs and id,
// so consumers are untouched.
func ShardTask(g *Graph, id NodeID, n int, gatherWork int64, gatherRoutine string) error {
	if n < 2 {
		return fmt.Errorf("graph %q: sharding %q into %d pieces is pointless", g.Name, id, n)
	}
	orig := g.Node(id)
	if orig == nil {
		return fmt.Errorf("graph %q: no node %q", g.Name, id)
	}
	if orig.Kind != KindTask {
		return fmt.Errorf("graph %q: node %q is a %v, not a task", g.Name, id, orig.Kind)
	}
	in := g.Pred(id)
	out := g.Succ(id)
	outVars := map[string]int64{}
	for _, a := range out {
		if w, seen := outVars[a.Var]; !seen || a.Words > w {
			outVars[a.Var] = a.Words
		}
	}
	// Deterministic variable order for the rename epilogue.
	var vars []string
	for _, a := range out {
		if _, done := outVars[a.Var]; done {
			vars = append(vars, a.Var)
			delete(outVars, a.Var)
			outVars[a.Var] = -1 // keep key, mark emitted
		}
	}
	for _, a := range out {
		outVars[a.Var] = a.Words
	}

	// The original node becomes the gather task (keeps id and
	// outgoing arcs); its incoming arcs are re-pointed to the shards.
	shardWork := orig.Work / int64(n)
	if shardWork < 1 {
		shardWork = 1
	}
	routine := orig.Routine
	label := orig.Label
	orig.Label = label + " (gather)"
	orig.Work = gatherWork
	orig.Routine = gatherRoutine

	// Remove original incoming arcs by rebuilding the arc set. Graph
	// has no arc deletion, so filter in place.
	var kept []Arc
	for _, a := range g.arcs {
		if a.To == id {
			continue
		}
		kept = append(kept, a)
	}
	g.arcs = kept
	g.succ = map[NodeID][]Arc{}
	g.pred = map[NodeID][]Arc{}
	for _, a := range g.arcs {
		g.succ[a.From] = append(g.succ[a.From], a)
		g.pred[a.To] = append(g.pred[a.To], a)
	}

	for k := 1; k <= n; k++ {
		sid := NodeID(fmt.Sprintf("%s#%d", id, k))
		prologue := fmt.Sprintf("shard = %d\nnshards = %d\n", k, n)
		epilogue := ""
		for _, v := range vars {
			epilogue += fmt.Sprintf("\n%s_%d = %s", v, k, v)
		}
		node, err := g.AddTask(sid, fmt.Sprintf("%s [%d/%d]", label, k, n), shardWork)
		if err != nil {
			return err
		}
		node.Routine = prologue + routine + epilogue
		for _, a := range in {
			if err := g.Connect(a.From, sid, a.Var, a.Words); err != nil {
				return err
			}
		}
		for _, v := range vars {
			if err := g.Connect(sid, id, fmt.Sprintf("%s_%d", v, k), outVars[v]); err != nil {
				return err
			}
		}
	}
	return nil
}

// GatherSum returns a gather routine that sums each variable over n
// shards: v = v_1 + ... + v_n for every listed variable. It covers the
// common reduction case so callers rarely hand-write gather code.
func GatherSum(n int, vars ...string) string {
	src := ""
	for _, v := range vars {
		src += v + " = "
		for k := 1; k <= n; k++ {
			if k > 1 {
				src += " + "
			}
			src += fmt.Sprintf("%s_%d", v, k)
		}
		src += "\n"
	}
	return src
}
