// Package graph implements Banger's programming-in-the-large (PITL)
// hierarchical dataflow graphs.
//
// A PITL design is a directed acyclic graph whose nodes are either
// primitive sequential tasks (to be filled in with a PITS routine),
// storage cells (the open rectangles of the paper's Figure 1), boundary
// ports of a subgraph, or decomposable nodes that expand into a
// lower-level graph. Arcs establish precedence created by control or
// data dependencies and are labelled with the variable whose data flows
// along them.
//
// Scheduling and execution always operate on a flattened graph: storage
// cells are elided into direct task-to-task arcs and decomposable nodes
// are spliced in place (see Flatten).
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node within a Graph. IDs are unique per graph.
// Flattening composes IDs hierarchically with '/' (e.g. "forward/y2").
type NodeID string

// Kind classifies a node of a PITL graph.
type Kind int

const (
	// KindTask is a primitive sequential task; it carries a work
	// estimate and optionally a PITS routine.
	KindTask Kind = iota
	// KindStorage is a named data cell (an open rectangle in Figure 1).
	// Storage is free: it is elided during flattening.
	KindStorage
	// KindSub is a decomposable node containing a lower-level graph.
	KindSub
	// KindInput marks a boundary port of a subgraph through which a
	// variable enters from the enclosing level.
	KindInput
	// KindOutput marks a boundary port of a subgraph through which a
	// variable leaves to the enclosing level.
	KindOutput
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindTask:
		return "task"
	case KindStorage:
		return "storage"
	case KindSub:
		return "sub"
	case KindInput:
		return "input"
	case KindOutput:
		return "output"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Node is a vertex of a PITL graph.
type Node struct {
	ID      NodeID
	Label   string // human-readable comment, e.g. "fan l21"
	Kind    Kind
	Work    int64  // abstract operation count for tasks (>= 0)
	Routine string // PITS source text for primitive tasks (may be empty)
	Sub     *Graph // lower-level graph for KindSub nodes
}

// IsTask reports whether the node is a schedulable primitive task.
func (n *Node) IsTask() bool { return n.Kind == KindTask }

// Arc is a directed precedence edge labelled with the variable whose
// data flows from From to To. Words is the message volume in machine
// words (>= 0; 0 means a pure control dependency).
type Arc struct {
	From  NodeID
	To    NodeID
	Var   string
	Words int64
}

// Graph is a hierarchical PITL dataflow graph.
//
// The zero value is not usable; construct with New. Node insertion
// order is preserved so renderings and schedules are deterministic.
type Graph struct {
	Name  string
	nodes []*Node
	index map[NodeID]*Node
	arcs  []Arc
	succ  map[NodeID][]Arc // arcs leaving each node, insertion order
	pred  map[NodeID][]Arc // arcs entering each node, insertion order

	version uint64 // bumped on every structural mutation
}

// Version returns a counter that changes on every structural mutation
// (node or arc insertion). Derived views — the scheduler's compiled
// graph — key their caches on it to detect staleness.
func (g *Graph) Version() uint64 { return g.version }

// New returns an empty graph with the given name.
func New(name string) *Graph {
	return &Graph{
		Name:  name,
		index: make(map[NodeID]*Node),
		succ:  make(map[NodeID][]Arc),
		pred:  make(map[NodeID][]Arc),
	}
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.nodes) }

// NumArcs returns the number of arcs.
func (g *Graph) NumArcs() int { return len(g.arcs) }

// Node returns the node with the given id, or nil if absent.
func (g *Graph) Node(id NodeID) *Node { return g.index[id] }

// Nodes returns the nodes in insertion order. The slice is shared;
// callers must not modify it.
func (g *Graph) Nodes() []*Node { return g.nodes }

// Arcs returns the arcs in insertion order. The slice is shared;
// callers must not modify it.
func (g *Graph) Arcs() []Arc { return g.arcs }

// Tasks returns the primitive task nodes in insertion order.
func (g *Graph) Tasks() []*Node {
	var ts []*Node
	for _, n := range g.nodes {
		if n.Kind == KindTask {
			ts = append(ts, n)
		}
	}
	return ts
}

func (g *Graph) add(n *Node) (*Node, error) {
	if n.ID == "" {
		return nil, fmt.Errorf("graph %q: empty node id", g.Name)
	}
	if _, dup := g.index[n.ID]; dup {
		return nil, fmt.Errorf("graph %q: duplicate node id %q", g.Name, n.ID)
	}
	g.nodes = append(g.nodes, n)
	g.index[n.ID] = n
	g.version++
	return n, nil
}

// AddTask adds a primitive task with the given abstract work (operation
// count). It returns the node so callers can attach a Routine.
func (g *Graph) AddTask(id NodeID, label string, work int64) (*Node, error) {
	if work < 0 {
		return nil, fmt.Errorf("graph %q: task %q has negative work %d", g.Name, id, work)
	}
	return g.add(&Node{ID: id, Label: label, Kind: KindTask, Work: work})
}

// MustAddTask is AddTask that panics on error; intended for building
// literal example designs.
func (g *Graph) MustAddTask(id NodeID, label string, work int64) *Node {
	n, err := g.AddTask(id, label, work)
	if err != nil {
		panic(err)
	}
	return n
}

// AddStorage adds a named storage cell. Storage nodes are elided by
// Flatten; they exist so designs can be drawn the way Figure 1 draws
// them, with data rectangles between tasks.
func (g *Graph) AddStorage(id NodeID, label string) (*Node, error) {
	return g.add(&Node{ID: id, Label: label, Kind: KindStorage})
}

// MustAddStorage is AddStorage that panics on error.
func (g *Graph) MustAddStorage(id NodeID, label string) *Node {
	n, err := g.AddStorage(id, label)
	if err != nil {
		panic(err)
	}
	return n
}

// AddSub adds a decomposable node whose behaviour is given by the
// lower-level graph sub. The subgraph's KindInput/KindOutput port nodes
// define how enclosing arcs bind to it: an arc into the sub node with
// variable v attaches to sub's input port named v, and an arc out with
// variable v detaches from sub's output port named v.
func (g *Graph) AddSub(id NodeID, label string, sub *Graph) (*Node, error) {
	if sub == nil {
		return nil, fmt.Errorf("graph %q: sub node %q has nil subgraph", g.Name, id)
	}
	return g.add(&Node{ID: id, Label: label, Kind: KindSub, Sub: sub})
}

// MustAddSub is AddSub that panics on error.
func (g *Graph) MustAddSub(id NodeID, label string, sub *Graph) *Node {
	n, err := g.AddSub(id, label, sub)
	if err != nil {
		panic(err)
	}
	return n
}

// AddInput adds a boundary input port. The port's id doubles as the
// variable name it imports from the enclosing level.
func (g *Graph) AddInput(id NodeID) (*Node, error) {
	return g.add(&Node{ID: id, Label: string(id), Kind: KindInput})
}

// MustAddInput is AddInput that panics on error.
func (g *Graph) MustAddInput(id NodeID) *Node {
	n, err := g.AddInput(id)
	if err != nil {
		panic(err)
	}
	return n
}

// AddOutput adds a boundary output port named after the variable it
// exports to the enclosing level.
func (g *Graph) AddOutput(id NodeID) (*Node, error) {
	return g.add(&Node{ID: id, Label: string(id), Kind: KindOutput})
}

// MustAddOutput is AddOutput that panics on error.
func (g *Graph) MustAddOutput(id NodeID) *Node {
	n, err := g.AddOutput(id)
	if err != nil {
		panic(err)
	}
	return n
}

// Connect adds an arc carrying variable v (words machine words) from
// one node to another. Both endpoints must already exist.
func (g *Graph) Connect(from, to NodeID, v string, words int64) error {
	if g.index[from] == nil {
		return fmt.Errorf("graph %q: arc source %q not found", g.Name, from)
	}
	if g.index[to] == nil {
		return fmt.Errorf("graph %q: arc target %q not found", g.Name, to)
	}
	if from == to {
		return fmt.Errorf("graph %q: self-arc on %q", g.Name, from)
	}
	if words < 0 {
		return fmt.Errorf("graph %q: arc %s->%s has negative words %d", g.Name, from, to, words)
	}
	a := Arc{From: from, To: to, Var: v, Words: words}
	g.arcs = append(g.arcs, a)
	g.succ[from] = append(g.succ[from], a)
	g.pred[to] = append(g.pred[to], a)
	g.version++
	return nil
}

// MustConnect is Connect that panics on error.
func (g *Graph) MustConnect(from, to NodeID, v string, words int64) {
	if err := g.Connect(from, to, v, words); err != nil {
		panic(err)
	}
}

// Succ returns a copy of the arcs leaving node id, in insertion order.
// Hot paths should prefer SuccArcs, which does not allocate.
func (g *Graph) Succ(id NodeID) []Arc {
	return append([]Arc(nil), g.succ[id]...)
}

// Pred returns a copy of the arcs entering node id, in insertion order.
// Hot paths should prefer PredArcs, which does not allocate.
func (g *Graph) Pred(id NodeID) []Arc {
	return append([]Arc(nil), g.pred[id]...)
}

// SuccArcs returns the arcs leaving node id, in insertion order. The
// slice is shared with the graph's arc index and must be treated as
// read-only; it stays valid until the graph is mutated.
func (g *Graph) SuccArcs(id NodeID) []Arc { return g.succ[id] }

// PredArcs returns the arcs entering node id, in insertion order. The
// slice is shared with the graph's arc index and must be treated as
// read-only; it stays valid until the graph is mutated.
func (g *Graph) PredArcs(id NodeID) []Arc { return g.pred[id] }

// Successors returns the distinct successor node ids of id, sorted.
func (g *Graph) Successors(id NodeID) []NodeID { return neighborIDs(g.succ[id], false) }

// Predecessors returns the distinct predecessor node ids of id, sorted.
func (g *Graph) Predecessors(id NodeID) []NodeID { return neighborIDs(g.pred[id], true) }

func neighborIDs(arcs []Arc, fromSide bool) []NodeID {
	seen := make(map[NodeID]bool, len(arcs))
	var out []NodeID
	for _, a := range arcs {
		id := a.To
		if fromSide {
			id = a.From
		}
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Entries returns nodes with no predecessors, in insertion order.
func (g *Graph) Entries() []*Node {
	var out []*Node
	for _, n := range g.nodes {
		if len(g.pred[n.ID]) == 0 {
			out = append(out, n)
		}
	}
	return out
}

// Exits returns nodes with no successors, in insertion order.
func (g *Graph) Exits() []*Node {
	var out []*Node
	for _, n := range g.nodes {
		if len(g.succ[n.ID]) == 0 {
			out = append(out, n)
		}
	}
	return out
}

// TotalWork returns the sum of Work over all task nodes, the serial
// computation demand of the design.
func (g *Graph) TotalWork() int64 {
	var w int64
	for _, n := range g.nodes {
		if n.Kind == KindTask {
			w += n.Work
		}
	}
	return w
}

// TotalWords returns the sum of Words over all arcs, the total data
// volume the design moves.
func (g *Graph) TotalWords() int64 {
	var w int64
	for _, a := range g.arcs {
		w += a.Words
	}
	return w
}

// Clone returns a deep copy of the graph. Subgraphs are cloned
// recursively; Routine strings are shared (immutable).
func (g *Graph) Clone() *Graph {
	c := New(g.Name)
	for _, n := range g.nodes {
		nn := &Node{ID: n.ID, Label: n.Label, Kind: n.Kind, Work: n.Work, Routine: n.Routine}
		if n.Sub != nil {
			nn.Sub = n.Sub.Clone()
		}
		c.nodes = append(c.nodes, nn)
		c.index[nn.ID] = nn
	}
	c.arcs = append(c.arcs, g.arcs...)
	for id, s := range g.succ {
		c.succ[id] = append([]Arc(nil), s...)
	}
	for id, p := range g.pred {
		c.pred[id] = append([]Arc(nil), p...)
	}
	return c
}
