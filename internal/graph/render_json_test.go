package graph

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestDOTContainsShapes(t *testing.T) {
	g := twoLevelDesign()
	dot := g.DOT()
	for _, want := range []string{
		"digraph", "shape=ellipse", "shape=box", "doubleoctagon",
		"cluster_sv", "prep", `"sv/s1"`, "->",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestASCIIListsLevelsAndArcs(t *testing.T) {
	g := Diamond(5, 3)
	s := g.ASCII()
	for _, want := range []string{"L0", "L1", "L2", "(a:5)", "(b:5)", "arcs:", "a -ab(3)-> b"} {
		if !strings.Contains(s, want) {
			t.Errorf("ASCII missing %q:\n%s", want, s)
		}
	}
}

func TestASCIIOnCyclicGraphReportsError(t *testing.T) {
	g := New("cyc")
	g.MustAddTask("a", "", 1)
	g.MustAddTask("b", "", 1)
	g.MustConnect("a", "b", "x", 0)
	g.MustConnect("b", "a", "y", 0)
	if s := g.ASCII(); !strings.Contains(s, "cycle") {
		t.Errorf("ASCII of cyclic graph = %q", s)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := twoLevelDesign()
	g.Node("prep").Routine = "x = a * 2"
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Name != g.Name || back.Len() != g.Len() || back.NumArcs() != g.NumArcs() {
		t.Fatalf("round trip changed shape: %s vs %s", back.Summary(), g.Summary())
	}
	if back.Node("prep").Routine != "x = a * 2" {
		t.Errorf("routine lost: %q", back.Node("prep").Routine)
	}
	sub := back.Node("sv").Sub
	if sub == nil || sub.Len() != 4 {
		t.Fatalf("subgraph lost: %v", sub)
	}
	// Round-trip again and compare bytes for stability.
	data2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Error("JSON encoding not stable across round trip")
	}
}

func TestJSONRejectsBadKind(t *testing.T) {
	var g Graph
	err := json.Unmarshal([]byte(`{"name":"x","nodes":[{"id":"a","kind":"widget"}]}`), &g)
	if err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestJSONRejectsSubWithoutGraph(t *testing.T) {
	var g Graph
	err := json.Unmarshal([]byte(`{"name":"x","nodes":[{"id":"a","kind":"sub"}]}`), &g)
	if err == nil {
		t.Error("sub node without subgraph accepted")
	}
}

func TestJSONRejectsDanglingArc(t *testing.T) {
	var g Graph
	err := json.Unmarshal([]byte(`{"name":"x","nodes":[{"id":"a","kind":"task"}],"arcs":[{"from":"a","to":"zz"}]}`), &g)
	if err == nil {
		t.Error("dangling arc accepted")
	}
}
