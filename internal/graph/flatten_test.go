package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// twoLevelDesign builds a small hierarchical design in the style of
// Figure 1: a top level with storage cells and one decomposable node.
//
//	[A] -> (prep) -> <<solve>> -> [x]
//
// where solve = input a -> (s1) -> (s2) -> output r.
func twoLevelDesign() *Graph {
	solve := New("solve")
	solve.MustAddInput("a")
	solve.MustAddTask("s1", "stage 1", 10)
	solve.MustAddTask("s2", "stage 2", 20)
	solve.MustAddOutput("r")
	solve.MustConnect("a", "s1", "a", 3)
	solve.MustConnect("s1", "s2", "m", 4)
	solve.MustConnect("s2", "r", "r", 5)

	g := New("top")
	g.MustAddStorage("A", "A")
	g.MustAddTask("prep", "prepare", 7)
	g.MustAddSub("sv", "solver", solve)
	g.MustAddStorage("X", "x")
	g.MustConnect("A", "prep", "A", 9)
	g.MustConnect("prep", "sv", "a", 2)
	g.MustConnect("sv", "X", "r", 6)
	return g
}

func TestFlattenTwoLevel(t *testing.T) {
	g := twoLevelDesign()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	flat, err := g.Flatten()
	if err != nil {
		t.Fatalf("Flatten: %v", err)
	}
	fg := flat.Graph
	if err := fg.ValidateFlat(); err != nil {
		t.Fatalf("ValidateFlat: %v", err)
	}
	// Expect tasks: prep, sv/s1, sv/s2.
	wantNodes := []NodeID{"prep", "sv/s1", "sv/s2"}
	if fg.Len() != len(wantNodes) {
		t.Fatalf("flat has %d nodes: %v", fg.Len(), fg.Nodes())
	}
	for _, id := range wantNodes {
		if fg.Node(id) == nil {
			t.Errorf("missing node %q", id)
		}
	}
	// Arcs: prep -> sv/s1 (var a), sv/s1 -> sv/s2 (m, 4 words).
	if fg.NumArcs() != 2 {
		t.Fatalf("flat has %d arcs: %v", fg.NumArcs(), fg.Arcs())
	}
	var sawBoundary, sawInner bool
	for _, a := range fg.Arcs() {
		switch {
		case a.From == "prep" && a.To == "sv/s1":
			sawBoundary = true
			if a.Var != "a" {
				t.Errorf("boundary arc var = %q", a.Var)
			}
			if a.Words != 3 { // inner words (3) win over outer (2)
				t.Errorf("boundary arc words = %d, want 3", a.Words)
			}
		case a.From == "sv/s1" && a.To == "sv/s2":
			sawInner = true
			if a.Words != 4 {
				t.Errorf("inner arc words = %d, want 4", a.Words)
			}
		default:
			t.Errorf("unexpected arc %+v", a)
		}
	}
	if !sawBoundary || !sawInner {
		t.Error("expected arcs missing")
	}
	// External bindings: prep reads A; sv/s2 writes x (storage X label "x").
	if got := flat.ExternalIn["prep"]; len(got) != 1 || got[0] != "A" {
		t.Errorf("ExternalIn[prep] = %v", got)
	}
	if got := flat.ExternalOut["sv/s2"]; len(got) != 1 || got[0] != "r" {
		t.Errorf("ExternalOut[sv/s2] = %v", got)
	}
	// Work is preserved.
	if fg.TotalWork() != 37 {
		t.Errorf("TotalWork = %d, want 37", fg.TotalWork())
	}
}

func TestFlattenNestedSubgraphs(t *testing.T) {
	innermost := New("leaf")
	innermost.MustAddInput("p")
	innermost.MustAddTask("core", "", 5)
	innermost.MustAddOutput("q")
	innermost.MustConnect("p", "core", "p", 1)
	innermost.MustConnect("core", "q", "q", 1)

	mid := New("mid")
	mid.MustAddInput("u")
	mid.MustAddSub("leafcall", "", innermost)
	mid.MustAddOutput("v")
	mid.MustConnect("u", "leafcall", "p", 1)
	mid.MustConnect("leafcall", "v", "q", 1)

	top := New("top")
	top.MustAddTask("a", "", 1)
	top.MustAddSub("m", "", mid)
	top.MustAddTask("z", "", 1)
	top.MustConnect("a", "m", "u", 1)
	top.MustConnect("m", "z", "v", 1)

	flat, err := top.Flatten()
	if err != nil {
		t.Fatalf("Flatten: %v", err)
	}
	if flat.Graph.Node("m/leafcall/core") == nil {
		t.Fatalf("nested node id not composed: %v", flat.Graph.Nodes())
	}
	order, err := flat.Graph.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "a" || order[2] != "z" {
		t.Errorf("order = %v", order)
	}
}

func TestFlattenPassThroughPort(t *testing.T) {
	sub := New("идентичность") // identity subgraph: input wired straight to output
	sub.MustAddInput("x")
	sub.MustAddOutput("y")
	sub.MustConnect("x", "y", "x", 2)

	g := New("top")
	g.MustAddTask("a", "", 1)
	g.MustAddSub("s", "", sub)
	g.MustAddTask("b", "", 1)
	g.MustConnect("a", "s", "x", 1)
	g.MustConnect("s", "b", "y", 3)

	flat, err := g.Flatten()
	if err != nil {
		t.Fatalf("Flatten: %v", err)
	}
	arcs := flat.Graph.Arcs()
	if len(arcs) != 1 || arcs[0].From != "a" || arcs[0].To != "b" {
		t.Fatalf("arcs = %v", arcs)
	}
	if arcs[0].Words != 2 { // inner wins
		t.Errorf("words = %d, want 2", arcs[0].Words)
	}
}

func TestFlattenStorageChain(t *testing.T) {
	g := New("chain")
	g.MustAddTask("w", "", 1)
	g.MustAddStorage("s1", "d1")
	g.MustAddStorage("s2", "d2")
	g.MustAddTask("r", "", 1)
	g.MustConnect("w", "s1", "v", 4)
	g.MustConnect("s1", "s2", "v", 0)
	g.MustConnect("s2", "r", "v", 0)

	flat, err := g.Flatten()
	if err != nil {
		t.Fatalf("Flatten: %v", err)
	}
	arcs := flat.Graph.Arcs()
	if len(arcs) != 1 || arcs[0].From != "w" || arcs[0].To != "r" || arcs[0].Words != 4 {
		t.Fatalf("arcs = %v", arcs)
	}
}

func TestFlattenFanOutStorage(t *testing.T) {
	g := New("fan")
	g.MustAddTask("w", "", 1)
	g.MustAddStorage("s", "shared")
	g.MustAddTask("r1", "", 1)
	g.MustAddTask("r2", "", 1)
	g.MustConnect("w", "s", "v", 8)
	g.MustConnect("s", "r1", "v", 0)
	g.MustConnect("s", "r2", "v", 0)
	flat, err := g.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	if flat.Graph.NumArcs() != 2 {
		t.Fatalf("arcs = %v", flat.Graph.Arcs())
	}
	for _, a := range flat.Graph.Arcs() {
		if a.From != "w" || a.Words != 8 {
			t.Errorf("unexpected arc %+v", a)
		}
	}
}

func TestFlattenPreservesOriginal(t *testing.T) {
	g := twoLevelDesign()
	before := g.Len()
	if _, err := g.Flatten(); err != nil {
		t.Fatal(err)
	}
	if g.Len() != before {
		t.Errorf("Flatten mutated its receiver: %d -> %d nodes", before, g.Len())
	}
	if g.Node("sv").Sub == nil {
		t.Error("subgraph removed from original")
	}
}

func TestFlattenAlreadyFlatIsIdentityShape(t *testing.T) {
	g := Diamond(5, 3)
	flat, err := g.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	if flat.Graph.Len() != 4 || flat.Graph.NumArcs() != 4 {
		t.Errorf("flat = %v", flat.Graph.Summary())
	}
	if len(flat.ExternalIn) != 0 || len(flat.ExternalOut) != 0 {
		t.Errorf("unexpected externals: %v %v", flat.ExternalIn, flat.ExternalOut)
	}
}

func TestValidateRejectsBadSubBinding(t *testing.T) {
	sub := New("sub")
	sub.MustAddInput("x")
	sub.MustAddTask("t", "", 1)
	sub.MustAddOutput("y")
	sub.MustConnect("x", "t", "x", 1)
	sub.MustConnect("t", "y", "y", 1)

	t.Run("unknown input var", func(t *testing.T) {
		g := New("g")
		g.MustAddTask("a", "", 1)
		g.MustAddSub("s", "", sub)
		g.MustConnect("a", "s", "nosuch", 1)
		if err := g.Validate(); err == nil {
			t.Error("arc to unknown input port accepted")
		}
	})
	t.Run("unfed input", func(t *testing.T) {
		g := New("g")
		g.MustAddSub("s", "", sub)
		if err := g.Validate(); err == nil {
			t.Error("unfed input port accepted")
		}
	})
	t.Run("unknown output var", func(t *testing.T) {
		g := New("g")
		g.MustAddTask("a", "", 1)
		g.MustAddTask("b", "", 1)
		g.MustAddSub("s", "", sub)
		g.MustConnect("a", "s", "x", 1)
		g.MustConnect("s", "b", "nosuch", 1)
		if err := g.Validate(); err == nil {
			t.Error("arc from unknown output port accepted")
		}
	})
	t.Run("doubly fed input", func(t *testing.T) {
		g := New("g")
		g.MustAddTask("a", "", 1)
		g.MustAddTask("b", "", 1)
		g.MustAddSub("s", "", sub)
		g.MustConnect("a", "s", "x", 1)
		g.MustConnect("b", "s", "x", 1)
		if err := g.Validate(); err == nil {
			t.Error("doubly fed input port accepted")
		}
	})
}

func TestValidateRejectsMultiWriterStorage(t *testing.T) {
	g := New("g")
	g.MustAddTask("a", "", 1)
	g.MustAddTask("b", "", 1)
	g.MustAddStorage("s", "cell")
	g.MustConnect("a", "s", "v", 1)
	g.MustConnect("b", "s", "v", 1)
	if err := g.Validate(); err == nil {
		t.Error("two writers to one storage cell accepted")
	}
}

func TestValidateRejectsPortMisuse(t *testing.T) {
	g := New("g")
	g.MustAddTask("a", "", 1)
	g.MustAddInput("in")
	g.MustAddOutput("out")
	g.MustConnect("a", "in", "v", 1)  // input with a predecessor
	g.MustConnect("out", "a", "v", 1) // output with a successor
	if err := g.Validate(); err == nil {
		t.Error("port misuse accepted")
	}
}

func TestValidateFlatRejectsNonTask(t *testing.T) {
	g := New("g")
	g.MustAddTask("a", "", 1)
	g.MustAddStorage("s", "cell")
	if err := g.ValidateFlat(); err == nil {
		t.Error("storage node accepted in flat graph")
	}
	empty := New("empty")
	if err := empty.ValidateFlat(); err == nil {
		t.Error("empty graph accepted as flat")
	}
}

// Property: random two-level hierarchical designs flatten to valid
// task graphs that preserve total work and task count.
func TestFlattenPropertyRandomHierarchies(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Inner subgraph: a small chain with one input and one output.
		innerLen := 1 + rng.Intn(4)
		sub := New("sub")
		sub.MustAddInput("in")
		var innerWork int64
		for i := 0; i < innerLen; i++ {
			w := int64(rng.Intn(20) + 1)
			innerWork += w
			sub.MustAddTask(NodeID("s"+itoaG(i)), "", w)
			if i == 0 {
				sub.MustConnect("in", "s0", "in", 1)
			} else {
				sub.MustConnect(NodeID("s"+itoaG(i-1)), NodeID("s"+itoaG(i)), "v"+itoaG(i), 1)
			}
		}
		sub.MustAddOutput("out")
		sub.MustConnect(NodeID("s"+itoaG(innerLen-1)), "out", "out", 1)

		// Outer: head task -> N sub nodes -> tail task.
		outer := New("outer")
		head := outer.MustAddTask("head", "", int64(rng.Intn(20)+1))
		tail := outer.MustAddTask("tail", "", int64(rng.Intn(20)+1))
		nSubs := 1 + rng.Intn(3)
		for k := 0; k < nSubs; k++ {
			id := NodeID("call" + itoaG(k))
			outer.MustAddSub(id, "", sub)
			outer.MustConnect("head", id, "in", 1)
			outer.MustConnect(id, "tail", "out", 1)
		}
		wantTasks := 2 + nSubs*innerLen
		wantWork := head.Work + tail.Work + int64(nSubs)*innerWork

		flat, err := outer.Flatten()
		if err != nil {
			t.Logf("flatten: %v", err)
			return false
		}
		if len(flat.Graph.Tasks()) != wantTasks {
			t.Logf("tasks = %d, want %d", len(flat.Graph.Tasks()), wantTasks)
			return false
		}
		if flat.Graph.TotalWork() != wantWork {
			t.Logf("work = %d, want %d", flat.Graph.TotalWork(), wantWork)
			return false
		}
		if err := flat.Graph.ValidateFlat(); err != nil {
			t.Logf("validate: %v", err)
			return false
		}
		// Depth: head + innerLen + tail.
		d, err := flat.Graph.Depth()
		if err != nil || d != innerLen+2 {
			t.Logf("depth = %d, want %d", d, innerLen+2)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func itoaG(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return string(rune('0'+i/10)) + string(rune('0'+i%10))
}
