package banger_test

// Throughput of the `banger serve` control plane: full HTTP round
// trips against the 501-task layered design on a 128-PE ring — the
// machine family where MH's link-contention pass is most expensive,
// i.e. the regime the schedule cache exists for. Two request modes:
// `schedule` (the paper's interactive predict step as a service —
// decode, admission, schedule or cache hit, prediction response) and
// `run` (the same plus virtual-time execution). Cold disables the
// cache so every submission pays the MH pass; warm primes the cache.
// The schedule-mode cold/warm gap is what the cache is worth.
// Baseline: BENCH_PR9.json.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/pits"
	"repro/internal/project"
	"repro/internal/serve"
	"repro/internal/wire"
)

// serveProjectBody marshals the 501-task layered calculator as a
// project submission, as `banger batch` would post it.
func serveProjectBody(b *testing.B) []byte {
	b.Helper()
	topo, err := machine.Ring(128)
	if err != nil {
		b.Fatal(err)
	}
	m, err := machine.New(topo.Name, topo, machine.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	p := &project.Project{
		Name: "layered-calc", Design: layeredCalcGraph(20, 25), Machine: m,
		Inputs: pits.Env{"x": pits.Num(3)},
	}
	body, err := json.Marshal(p)
	if err != nil {
		b.Fatal(err)
	}
	return body
}

// benchServeThroughput drives b.N submissions through conc concurrent
// clients and reports runs/sec plus p50/p99 request latency.
func benchServeThroughput(b *testing.B, conc int, mode string, warm bool) {
	cacheCap := -1 // cold: every request schedules from scratch
	if warm {
		cacheCap = 16
	}
	s := serve.New(serve.Options{
		DefaultAlg: "mh", MaxConcurrent: conc,
		QueueDepth: 4 * conc, TenantCap: -1,
		CacheCap: cacheCap, Virtual: true,
		// In-process runs cannot lose messages, but conc 128-PE runs
		// time-sharing the bench host's cores stretch wall-clock
		// delivery far past the 1s default floor — without this, the
		// per-receive watchdog aborts healthy runs at c16.
		WatchdogMin: 5 * time.Minute,
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	client := srv.Client()
	body := serveProjectBody(b)
	url := srv.URL + "/run"
	if mode == "schedule" {
		url += "?mode=schedule"
	}
	post := func() time.Duration {
		t0 := time.Now()
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			b.Error(err)
			return 0
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(resp.Body)
			b.Errorf("serve said %s: %s", resp.Status, msg)
			return 0
		}
		io.Copy(io.Discard, resp.Body)
		return time.Since(t0)
	}
	// Warmup outside the timer: the first requests prime the schedule
	// cache (warm mode) and fault in the scheduler's arena pools and
	// the runtime heap (both modes), so the measurement is the
	// steady-state service regime, not first-touch allocation.
	for i := 0; i < 3; i++ {
		post()
	}

	lats := make([]time.Duration, b.N)
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	b.ResetTimer()
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1)
				if i >= int64(b.N) {
					return
				}
				lats[i] = post()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	b.StopTimer()

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) float64 {
		i := int(p * float64(len(lats)-1))
		return float64(lats[i]) / float64(time.Millisecond)
	}
	b.ReportMetric(float64(b.N)/wall.Seconds(), "runs/s")
	b.ReportMetric(pct(0.50), "p50-ms")
	b.ReportMetric(pct(0.99), "p99-ms")
}

// serveFleetProjectBody marshals the fleet-mode workload: a 65-task
// layered calculator on a 4-PE hypercube. Fleet runs execute
// wall-clock across live worker daemons, so the workload is sized for
// distributed execution round trips, not for the 128-PE scheduling
// stressor the local modes use.
func serveFleetProjectBody(b *testing.B) []byte {
	b.Helper()
	topo, err := machine.ParseTopology("hypercube:2")
	if err != nil {
		b.Fatal(err)
	}
	m, err := machine.New(topo.Name, topo, machine.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	p := &project.Project{
		Name: "layered-calc-fleet", Design: layeredCalcGraph(8, 8), Machine: m,
		Inputs: pits.Env{"x": pits.Num(3)},
	}
	body, err := json.Marshal(p)
	if err != nil {
		b.Fatal(err)
	}
	return body
}

// benchServeFleet drives b.N run-mode submissions through conc
// concurrent clients against a control plane backed by a live
// in-process worker fleet of the given size. maxRuns caps concurrent
// fleet runs (0 = unlimited); maxRuns=1 reproduces the old one-run
// lease, the serialized baseline the multiplexing axis is measured
// against.
func benchServeFleet(b *testing.B, workers, conc, maxRuns int) {
	tr := wire.Inproc()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wwg sync.WaitGroup
	seed := make([]string, workers)
	for i := 0; i < workers; i++ {
		addr := fmt.Sprintf("bench-fleet-w%d", i)
		ready := make(chan struct{})
		wwg.Add(1)
		go func() {
			defer wwg.Done()
			wire.ServeWorker(ctx, tr, addr, wire.WorkerOptions{}, func(string) { close(ready) })
		}()
		<-ready
		seed[i] = addr
	}
	defer wwg.Wait()
	defer cancel()

	fleet := &wire.Fleet{
		Transport: tr, Control: "bench-fleet-ctl", Seed: seed,
		MaxRuns: maxRuns, Mesh: true,
		HeartbeatEvery: 100 * time.Millisecond,
		PeerTimeout:    time.Minute,
	}
	if err := fleet.Start(); err != nil {
		b.Fatal(err)
	}
	defer fleet.Close()

	s := serve.New(serve.Options{
		DefaultAlg: "etf", MaxConcurrent: conc,
		QueueDepth: 4 * conc, TenantCap: -1,
		CacheCap: 16, Fleet: fleet,
		WatchdogMin: 5 * time.Minute,
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	client := srv.Client()
	body := serveFleetProjectBody(b)
	url := srv.URL + "/run"
	post := func() time.Duration {
		t0 := time.Now()
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			b.Error(err)
			return 0
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(resp.Body)
			b.Errorf("serve said %s: %s", resp.Status, msg)
			return 0
		}
		io.Copy(io.Discard, resp.Body)
		return time.Since(t0)
	}
	for i := 0; i < 3; i++ {
		post()
	}

	lats := make([]time.Duration, b.N)
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	b.ResetTimer()
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1)
				if i >= int64(b.N) {
					return
				}
				lats[i] = post()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	b.StopTimer()

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) float64 {
		i := int(p * float64(len(lats)-1))
		return float64(lats[i]) / float64(time.Millisecond)
	}
	b.ReportMetric(float64(b.N)/wall.Seconds(), "runs/s")
	b.ReportMetric(pct(0.50), "p50-ms")
	b.ReportMetric(pct(0.99), "p99-ms")
}

// BenchmarkServeThroughput sweeps the serving layer over concurrency
// levels 1/4/16 and both request modes, cold (cache disabled) against
// warm (cache primed); plus the fleet-backed run mode over {1,4,16}
// concurrent runs × {1,2,4} worker daemons (runs multiplex onto the
// same daemons keyed by run ID), with fleet-serial — the old one-run
// lease, MaxRuns=1 — as the serialized comparison point.
func BenchmarkServeThroughput(b *testing.B) {
	for _, mode := range []string{"schedule", "run"} {
		for _, temp := range []string{"cold", "warm"} {
			for _, conc := range []int{1, 4, 16} {
				b.Run(fmt.Sprintf("%s/%s/c%d", mode, temp, conc), func(b *testing.B) {
					benchServeThroughput(b, conc, mode, temp == "warm")
				})
			}
		}
	}
	for _, workers := range []int{1, 2, 4} {
		for _, runs := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("fleet/w%d/r%d", workers, runs), func(b *testing.B) {
				benchServeFleet(b, workers, runs, 0)
			})
		}
	}
	b.Run("fleet-serial/w2/r4", func(b *testing.B) {
		benchServeFleet(b, 2, 4, 1)
	})
}
