package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	goexec "os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/pits"
	"repro/internal/project"
	"repro/internal/serve"
)

// TestHelperServeProcess is not a test: re-executed with
// BANGER_SERVE_HELPER=1 it becomes a real `banger serve` control
// plane in its own process (the acceptance tests' server).
func TestHelperServeProcess(t *testing.T) {
	if os.Getenv("BANGER_SERVE_HELPER") != "1" {
		t.Skip("helper process for the serve acceptance tests")
	}
	args := strings.Fields(os.Getenv("BANGER_SERVE_ARGS"))
	if err := cmdServe(args); err != nil {
		fmt.Fprintln(os.Stderr, "serve helper:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// spawnServe re-executes the test binary as a serve control plane and
// returns its base URL, fleet control address ("" without fleet mode)
// and process handle.
func spawnServe(t *testing.T, args string) (string, string, *goexec.Cmd) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := goexec.Command(exe, "-test.run", "^TestHelperServeProcess$")
	cmd.Env = append(os.Environ(), "BANGER_SERVE_HELPER=1", "BANGER_SERVE_ARGS="+args)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	type banner struct{ url, control string }
	ch := make(chan banner, 1)
	go func() {
		var b banner
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if a, ok := strings.CutPrefix(line, "fleet control on "); ok {
				b.control = a
			}
			if a, ok := strings.CutPrefix(line, "serving on "); ok {
				b.url = a
				ch <- b
				break
			}
		}
	}()
	select {
	case b := <-ch:
		return b.url, b.control, cmd
	case <-time.After(15 * time.Second):
		t.Fatal("serve process never reported its address")
		return "", "", nil
	}
}

// batchProject writes one seeded layered-calculator project to dir.
// The seed varies both the input value and (every other seed) the task
// weights, so a batch exercises cache hits and misses.
func batchProject(t *testing.T, dir string, seed int) string {
	t.Helper()
	g := graph.New(fmt.Sprintf("batch-%d", seed))
	g.MustAddStorage("IN", "x")
	width := 3
	for i := 0; i < width; i++ {
		id := graph.NodeID(fmt.Sprintf("a%d", i))
		n := g.MustAddTask(id, string(id), int64(10+(seed%2)*5+i))
		n.Routine = fmt.Sprintf("v%d = x * %d + %d", i, i+2, seed%2)
		g.MustConnect("IN", id, "x", 1)
	}
	snk := g.MustAddTask("snk", "snk", 20)
	terms := make([]string, width)
	for i := range terms {
		terms[i] = fmt.Sprintf("v%d", i)
		g.MustConnect(graph.NodeID(fmt.Sprintf("a%d", i)), "snk", terms[i], 1)
	}
	snk.Routine = "out = " + strings.Join(terms, " + ") + "\nprint \"sum \", out"
	g.MustAddStorage("OUT", "out")
	g.MustConnect("snk", "OUT", "out", 1)

	topo, err := machine.ParseTopology("hypercube:2")
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New("hypercube:2", topo,
		machine.Params{ProcSpeed: 1, TaskStartup: 1, MsgStartup: 5, WordTime: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := &project.Project{Name: fmt.Sprintf("batch-%d", seed), Design: g, Machine: m,
		Inputs: pits.Env{"x": pits.Num(float64(seed + 1))}}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, fmt.Sprintf("batch-%d.json", seed))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// outputSection extracts the printed lines and the outputs block from
// a command's stdout — the part of `banger run` and `banger batch`
// output that must be byte-identical.
func outputSection(out string) []string {
	var section []string
	inOutputs := false
	for _, line := range strings.Split(out, "\n") {
		switch {
		case strings.HasPrefix(line, "  > "):
			section = append(section, line)
		case line == "outputs:":
			inOutputs = true
			section = append(section, line)
		case inOutputs && strings.HasPrefix(line, "  "):
			section = append(section, line)
		case inOutputs:
			inOutputs = false
		}
	}
	return section
}

func scrapeServeStats(t *testing.T, url string) serve.StatsResponse {
	t.Helper()
	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serve.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestServeBatchAcceptance is the conform-style acceptance run:
// `banger batch` over seeded designs against a live `banger serve`
// fleet of real worker processes produces outputs byte-identical to
// serial `banger run`, in serial argument order, while one worker is
// SIGKILLed mid-batch and a replacement rejoins — and the server's
// /stats confirms cache traffic and a leak-free fleet.
func TestServeBatchAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns server and worker processes")
	}

	const runs = 8
	dir := t.TempDir()
	projects := make([]string, runs)
	for i := range projects {
		projects[i] = batchProject(t, dir, i)
	}

	// Serial ground truth: each project through `banger run`, locally.
	serial := make([][]string, runs)
	for i, p := range projects {
		out := capture(t, func() error { return cmdRun([]string{"-project", p, "-alg", "etf"}) })
		serial[i] = outputSection(out)
		if len(serial[i]) < 3 {
			t.Fatalf("serial run %d printed no usable section:\n%s", i, out)
		}
	}

	// A live control plane in fleet mode plus two real worker daemons.
	url, control, _ := spawnServe(t,
		"-listen 127.0.0.1:0 -control 127.0.0.1:0 -alg etf -peer-timeout 2s")
	if control == "" {
		t.Fatal("serve did not report a fleet control address")
	}
	_, victim := spawnWorker(t, control)
	spawnWorker(t, control)
	waitFleetSize(t, url, 2)

	// The batch, with a mid-batch worker kill: once /stats shows
	// progress, SIGKILL one worker and announce a replacement.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		deadline := time.Now().Add(60 * time.Second)
		for time.Now().Before(deadline) {
			if st := scrapeServeStats(t, url); st.Runs.Total >= 2 {
				victim.Process.Signal(syscall.SIGKILL)
				spawnWorker(t, control)
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
	}()

	args := append([]string{"-addr", url, "-j", "3", "-timeout", "120s"}, projects...)
	out := capture(t, func() error { return cmdBatch(args) })
	<-killed

	// Results appear in argument order and each section is
	// byte-identical to its serial run.
	var headers []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "== ") {
			headers = append(headers, line)
		}
	}
	if len(headers) != runs {
		t.Fatalf("batch printed %d result headers, want %d:\n%s", len(headers), runs, out)
	}
	for i, p := range projects {
		if !strings.Contains(headers[i], p) {
			t.Fatalf("header %d = %q, want project %s (serial argument order)", i, headers[i], p)
		}
	}
	sections := splitBatchSections(out)
	if len(sections) != runs {
		t.Fatalf("batch printed %d sections, want %d:\n%s", len(sections), runs, out)
	}
	for i := range projects {
		got, want := strings.Join(sections[i], "\n"), strings.Join(serial[i], "\n")
		if got != want {
			t.Errorf("project %d batch output differs from serial run:\nbatch:\n%s\nserial:\n%s",
				i, got, want)
		}
	}

	// The fleet healed: the replacement joined, and the cache saw both
	// misses (distinct shapes) and hits (repeated ones).
	waitFleetSize(t, url, 2)
	st := scrapeServeStats(t, url)
	if st.Runs.Total < runs {
		t.Fatalf("stats report %d runs, want >= %d", st.Runs.Total, runs)
	}
	if st.Cache.Misses < 2 || st.Cache.Hits < 1 {
		t.Fatalf("cache stats = %+v, want >= 2 misses and >= 1 hit", st.Cache)
	}
}

// splitBatchSections cuts batch output into per-project printed+output
// sections, in printed order.
func splitBatchSections(out string) [][]string {
	var sections [][]string
	var cur []string
	flush := func() {
		if cur != nil {
			sections = append(sections, cur)
			cur = nil
		}
	}
	inOutputs := false
	for _, line := range strings.Split(out, "\n") {
		switch {
		case strings.HasPrefix(line, "== "):
			flush()
			cur = []string{}
			inOutputs = false
		case cur == nil:
		case strings.HasPrefix(line, "  > "):
			cur = append(cur, line)
		case line == "outputs:":
			inOutputs = true
			cur = append(cur, line)
		case inOutputs && strings.HasPrefix(line, "  "):
			cur = append(cur, line)
		case inOutputs:
			inOutputs = false
		}
	}
	flush()
	return sections
}

// waitFleetSize polls /stats until the fleet reaches n members.
func waitFleetSize(t *testing.T, url string, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if st := scrapeServeStats(t, url); st.Fleet.Size >= n {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("fleet never reached %d members", n)
}

// TestServeSmokeLocal: the CLI serve command in local (fleet-less)
// mode serves a small batch end to end, reports sane stats, and exits
// cleanly on SIGTERM — the CI smoke path without process churn.
func TestServeSmokeLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a server process")
	}
	dir := t.TempDir()
	projects := []string{batchProject(t, dir, 0), batchProject(t, dir, 1), batchProject(t, dir, 0)}

	url, _, cmd := spawnServe(t, "-listen 127.0.0.1:0 -alg etf")
	args := append([]string{"-addr", url, "-j", "2"}, projects...)
	out := capture(t, func() error { return cmdBatch(args) })
	if got := strings.Count(out, "outputs:"); got != 3 {
		t.Fatalf("batch served %d runs, want 3:\n%s", got, out)
	}
	st := scrapeServeStats(t, url)
	if st.Runs.Total != 3 || st.Runs.Failed != 0 {
		t.Fatalf("stats = %+v", st.Runs)
	}
	if st.Cache.Hits < 1 {
		t.Fatalf("repeated shape never hit the cache: %+v", st.Cache)
	}
	if st.Goroutines <= 0 {
		t.Fatalf("stats goroutine gauge = %d", st.Goroutines)
	}

	// -predict: schedule-only round trip — a prediction line, no
	// execution output, and no new run-mode side effects on /stats.
	out = capture(t, func() error {
		return cmdBatch([]string{"-addr", url, "-predict", projects[0]})
	})
	if !strings.Contains(out, "predicted: makespan") {
		t.Fatalf("-predict printed no prediction line:\n%s", out)
	}
	if strings.Contains(out, "outputs:") {
		t.Fatalf("-predict printed execution outputs:\n%s", out)
	}

	// Graceful shutdown: SIGTERM drains and the process exits 0.
	cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve exited uncleanly after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve never exited after SIGTERM")
	}
}
