package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/internal/wire"
)

// cmdServe runs the scheduling-as-a-service control plane: a
// long-running HTTP server accepting project submissions on POST /run,
// with /healthz and /stats for operators. Runs execute in-process by
// default; -fleet/-control switch to a shared elastic worker fleet.
// SIGTERM/SIGINT drain in-flight runs before exit.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:9080", "HTTP listen address (port 0 picks a free one)")
	alg := fs.String("alg", "mh", "default scheduler for submissions naming none")
	workers := fs.Int("workers", 0, "schedule-construction workers on cache misses (0 = auto)")
	maxRuns := fs.Int("max-runs", 0, "concurrently executing runs (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 64, "runs waiting for a slot before 429s (negative = no waiting room)")
	tenantCap := fs.Int("tenant-cap", 8, "per-tenant in-flight cap, X-Tenant header (negative = unlimited)")
	cacheCap := fs.Int("cache", 128, "schedule cache entries (negative = disable caching)")
	virtual := fs.Bool("virtual", false, "stamp traces in deterministic virtual time")
	fleet := fs.String("fleet", "", "execute on worker daemons: comma-separated host:port seed list")
	control := fs.String("control", "", "fleet control listen address for worker -join announces (enables fleet mode; default with -fleet: 127.0.0.1:0)")
	minWorkers := fs.Int("min-workers", 0, "refuse drains leaving fewer live workers (0 = only the last)")
	mesh := fs.Bool("mesh", true, "fleet workers exchange data peer-to-peer")
	heartbeat := fs.Duration("heartbeat", 250*time.Millisecond, "fleet keepalive cadence")
	peerTimeout := fs.Duration("peer-timeout", 3*time.Second, "fleet silence budget before a worker is declared dead")
	flushEvery := fs.Duration("flush-interval", 0, "fleet frame-coalescing window (0 = default)")
	watchdogMin := fs.Duration("watchdog-min", 0, "per-receive watchdog floor; raise when -max-runs oversubscribes the cores (0 = 1s)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "in-flight budget at shutdown")
	if err := fs.Parse(args); err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	logf := func(format string, a ...any) {
		fmt.Fprintf(os.Stderr, "serve: "+format+"\n", a...)
	}

	var fl *wire.Fleet
	if *fleet != "" || *control != "" {
		var seed []string
		for _, a := range strings.Split(*fleet, ",") {
			if a = strings.TrimSpace(a); a != "" {
				seed = append(seed, a)
			}
		}
		ctl := *control
		if ctl == "" {
			ctl = "127.0.0.1:0"
		}
		fl = &wire.Fleet{
			Transport: wire.TCP(), Control: ctl, Seed: seed,
			MinWorkers: *minWorkers, MaxRuns: *maxRuns, Mesh: *mesh,
			HeartbeatEvery: *heartbeat, PeerTimeout: *peerTimeout,
			FlushEvery: *flushEvery, Logf: logf,
		}
		if err := fl.Start(); err != nil {
			return err
		}
		defer fl.Close()
		// The bound control address goes to stdout so scripts can point
		// `banger worker -join` at a ":0" port.
		fmt.Printf("fleet control on %s\n", fl.Addr())
	}

	s := serve.New(serve.Options{
		DefaultAlg: *alg, Workers: *workers,
		MaxConcurrent: *maxRuns, QueueDepth: *queue,
		TenantCap: *tenantCap, CacheCap: *cacheCap,
		Fleet: fl, Virtual: *virtual,
		WatchdogMin: *watchdogMin, Logf: logf,
	})

	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Printf("serving on http://%s\n", lis.Addr())

	srv := &http.Server{Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(lis) }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	// Graceful shutdown: refuse new submissions, let in-flight runs
	// finish inside the drain budget, then close the listener.
	logf("draining in-flight runs (budget %v)", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		logf("%v", err)
	}
	return srv.Shutdown(dctx)
}
