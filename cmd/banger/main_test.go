package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/project"
	"repro/internal/sched"
)

// capture runs f with stdout redirected and returns what it printed.
func capture(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := r.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- b.String()
	}()
	ferr := f()
	w.Close()
	os.Stdout = old
	out := <-done
	if ferr != nil {
		t.Fatalf("command failed: %v\noutput so far:\n%s", ferr, out)
	}
	return out
}

func TestCmdList(t *testing.T) {
	out := capture(t, cmdList)
	for _, want := range []string{"lu3x3", "newton-sqrt", "stats", "mh", "dsh", "ish", "hypercube:D"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %q:\n%s", want, out)
		}
	}
}

func TestCmdShow(t *testing.T) {
	out := capture(t, func() error { return cmdShow([]string{"-project", "lu3x3"}) })
	for _, want := range []string{"lu3x3", "<<forward>>", "expansion of <<back>>", "flattened:", "16 tasks"} {
		if !strings.Contains(out, want) {
			t.Errorf("show missing %q", want)
		}
	}
	dot := capture(t, func() error { return cmdShow([]string{"-project", "lu3x3", "-dot"}) })
	if !strings.Contains(dot, "digraph") {
		t.Error("dot output missing digraph")
	}
}

func TestCmdTopology(t *testing.T) {
	out := capture(t, func() error { return cmdTopology([]string{"mesh:2x3"}) })
	if !strings.Contains(out, "mesh-2x3") || !strings.Contains(out, "diameter 3") {
		t.Errorf("topology:\n%s", out)
	}
	if err := cmdTopology(nil); err == nil {
		t.Error("missing spec accepted")
	}
	if err := cmdTopology([]string{"bogus"}); err == nil {
		t.Error("bad spec accepted")
	}
}

func TestCmdScheduleAndOutputs(t *testing.T) {
	out := capture(t, func() error { return cmdSchedule([]string{"-project", "lu3x3", "-alg", "dsh"}) })
	for _, want := range []string{"dsh on", "PE0", "messages carrying", "utilization"} {
		if !strings.Contains(out, want) {
			t.Errorf("schedule missing %q:\n%s", want, out)
		}
	}
	csv := capture(t, func() error { return cmdSchedule([]string{"-project", "lu3x3", "-csv"}) })
	if !strings.HasPrefix(csv, "task,pe,start_us") {
		t.Errorf("csv header: %.60q", csv)
	}
	svgPath := filepath.Join(t.TempDir(), "chart.svg")
	capture(t, func() error { return cmdSchedule([]string{"-project", "lu3x3", "-svg", svgPath}) })
	data, err := os.ReadFile(svgPath)
	if err != nil || !strings.HasPrefix(string(data), "<svg") {
		t.Errorf("svg file: %v", err)
	}
	// Machine override.
	out = capture(t, func() error {
		return cmdSchedule([]string{"-project", "lu3x3", "-machine", "star:5"})
	})
	if !strings.Contains(out, "star-5") {
		t.Errorf("machine override ignored:\n%s", out)
	}
}

func TestCmdSpeedup(t *testing.T) {
	out := capture(t, func() error {
		return cmdSpeedup([]string{"-project", "lu3x3", "-dims", "0,1,2"})
	})
	for _, want := range []string{"speedup vs processors", "1 PE", "4 PE"} {
		if !strings.Contains(out, want) {
			t.Errorf("speedup missing %q", want)
		}
	}
	if err := cmdSpeedup([]string{"-dims", "x"}); err == nil {
		t.Error("bad dims accepted")
	}
}

func TestCmdSimulateAnimateRehearseRun(t *testing.T) {
	sim := capture(t, func() error { return cmdSimulate([]string{"-project", "lu3x3", "-alg", "etf"}) })
	if !strings.Contains(sim, "simulated:") || !strings.Contains(sim, "utilization") {
		t.Errorf("simulate:\n%s", sim)
	}
	anim := capture(t, func() error { return cmdAnimate([]string{"-project", "lu3x3", "-frames", "4"}) })
	if !strings.Contains(anim, "frame 4") || !strings.Contains(anim, "done 16/16") {
		t.Errorf("animate:\n%s", anim)
	}
	reh := capture(t, func() error { return cmdRehearse([]string{"-project", "lu3x3"}) })
	if !strings.Contains(reh, "rehearsed 16 tasks") || !strings.Contains(reh, "x = [1, 2, 3]") {
		t.Errorf("rehearse:\n%s", reh)
	}
	run := capture(t, func() error { return cmdRun([]string{"-project", "lu3x3", "-alg", "mh"}) })
	if !strings.Contains(run, "ran 16 tasks") || !strings.Contains(run, "x = [1, 2, 3]") {
		t.Errorf("run:\n%s", run)
	}
}

func TestCmdCalc(t *testing.T) {
	out := capture(t, func() error {
		return cmdCalc([]string{"-project", "newton-sqrt", "-task", "sqrt"})
	})
	for _, want := range []string{"Task: sqrt", "PROGRAM", "DISPLAY", "1.414213562"} {
		if !strings.Contains(out, want) {
			t.Errorf("calc missing %q:\n%s", want, out)
		}
	}
}

func TestCmdCodegen(t *testing.T) {
	out := capture(t, func() error { return cmdCodegen([]string{"-project", "lu3x3"}) })
	if !strings.Contains(out, "package main") {
		t.Error("codegen stdout missing program")
	}
	file := filepath.Join(t.TempDir(), "gen.go")
	capture(t, func() error { return cmdCodegen([]string{"-project", "lu3x3", "-o", file}) })
	if data, err := os.ReadFile(file); err != nil || !strings.Contains(string(data), "func main()") {
		t.Errorf("codegen file: %v", err)
	}
}

func TestCmdDemo(t *testing.T) {
	out := capture(t, func() error { return cmdDemo(nil) })
	for _, want := range []string{"Step 1", "Step 5", "x = [1, 2, 3]"} {
		if !strings.Contains(out, want) {
			t.Errorf("demo missing %q", want)
		}
	}
}

func TestLoadProjectFromFile(t *testing.T) {
	p, err := project.NewtonSqrt()
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "proj.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := loadProject(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name != "newton-sqrt" {
		t.Errorf("loaded %q", loaded.Name)
	}
	if _, err := loadProject("/no/such/file.json"); err == nil {
		t.Error("missing file accepted")
	}
	garbage := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(garbage, []byte("{nope"), 0o644)
	if _, err := loadProject(garbage); err == nil {
		t.Error("garbage json accepted")
	}
}

func TestCmdScheduleJSONExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sched.json")
	capture(t, func() error { return cmdSchedule([]string{"-project", "lu3x3", "-json", path}) })
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var sc sched.Schedule
	if err := json.Unmarshal(data, &sc); err != nil {
		t.Fatalf("exported schedule does not load: %v", err)
	}
	if sc.Algorithm != "mh" || len(sc.Slots) != 16 {
		t.Errorf("loaded %s with %d slots", sc.Algorithm, len(sc.Slots))
	}
}
