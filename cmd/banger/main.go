// Command banger is the terminal front end of the Banger environment:
// it loads a project (a built-in sample or a JSON file), schedules it,
// draws Gantt charts and speedup predictions, trial-runs tasks through
// the calculator panel, executes the program in parallel, and
// generates standalone Go code.
//
// Usage:
//
//	banger <command> [flags]
//
// Commands:
//
//	list       list built-in projects, schedulers and topologies
//	show       print a project's dataflow design
//	topology   print an interconnection topology
//	schedule   map a project onto its machine and draw the Gantt chart
//	speedup    predict speedup across hypercube sizes
//	simulate   replay a schedule through the discrete-event simulator
//	animate    frame-by-frame replay of a simulated execution
//	rehearse   trial-run the whole design sequentially (instant feedback)
//	run        execute the scheduled program on goroutines (wall-clock
//	           or deterministic virtual time), locally or distributed
//	           over worker daemons with -dist
//	worker     host processors for a remote coordinator's "run -dist"
//	drain      gracefully evacuate one worker from a running fleet
//	serve      scheduling-as-a-service control plane over HTTP/JSON
//	batch      fan runs out to a serve control plane concurrently
//	calc       open the calculator panel of one task
//	codegen    generate a standalone Go program
//	conform    differential conformance fuzzing across all engines
//	demo       guided tour over the LU example
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/calc"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/gantt"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/pits"
	"repro/internal/project"
	"repro/internal/sched"
	"repro/internal/wire"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "list":
		err = cmdList()
	case "show":
		err = cmdShow(args)
	case "topology":
		err = cmdTopology(args)
	case "schedule":
		err = cmdSchedule(args)
	case "speedup":
		err = cmdSpeedup(args)
	case "simulate":
		err = cmdSimulate(args)
	case "animate":
		err = cmdAnimate(args)
	case "rehearse":
		err = cmdRehearse(args)
	case "run":
		err = cmdRun(args)
	case "worker":
		err = cmdWorker(args)
	case "drain":
		err = cmdDrain(args)
	case "serve":
		err = cmdServe(args)
	case "batch":
		err = cmdBatch(args)
	case "calc":
		err = cmdCalc(args)
	case "codegen":
		err = cmdCodegen(args)
	case "conform":
		err = cmdConform(args)
	case "demo":
		err = cmdDemo(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "banger: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "banger:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: banger <command> [flags]

commands:
  list                          built-ins, schedulers, topology specs
  show     -project P           print the dataflow design
  topology <spec>               print a topology (e.g. hypercube:3, mesh:2x4)
  schedule -project P [-alg A] [-machine SPEC] [-csv] [-svg FILE]
           [-json FILE] [-report]
  speedup  -project P [-alg A] [-dims 0,1,2,3]
  simulate -project P [-alg A]
  animate  -project P [-alg A] [-frames N]
  rehearse -project P
  run      -project P [-alg A] [-virtual] [-chart] [-retry] [-grace G]
           [-faults SPEC|rand] [-fault-seed N]
           [-dist HOST:PORT,HOST:PORT,...] [-calibrate]
           [-peer-timeout D] [-heartbeat D] [-mesh=BOOL] [-flush-interval D]
           [-control HOST:PORT] [-min-workers N]
  worker   [-listen HOST:PORT] [-join CTRL]
                                host processors for a remote "run -dist";
                                -join announces to a run's -control address
  drain    -control CTRL (-worker N | -addr HOST:PORT) [-timeout D]
                                gracefully evacuate one worker mid-run
  serve    [-listen HOST:PORT] [-alg A] [-max-runs N] [-queue N]
           [-tenant-cap N] [-cache N] [-workers N] [-virtual]
           [-fleet HOST:PORT,...] [-control HOST:PORT] [-min-workers N]
           [-mesh=BOOL] [-heartbeat D] [-peer-timeout D] [-drain-timeout D]
                                scheduling-as-a-service control plane:
                                POST /run, GET /healthz, GET /stats
  batch    -addr URL [-alg A] [-j N] [-tenant T] [-predict] [-timeout D]
           PROJECT...           fan runs out to a serve control plane,
                                printing outputs in argument order
                                (-predict: schedule-only, no execution)
  calc     -project P -task T [-run]
  codegen  -project P [-alg A] [-o FILE]
  conform  [-seeds N] [-start N] [-jobs M] [-out DIR] [-skew-comm US]
           [-shrink-budget N] | -repro DIR
  demo

-project takes a built-in name (lu3x3, newton-sqrt, stats, heat) or a JSON file path.`)
}

// loadProject resolves -project values: built-in names first, then a
// JSON file on disk.
func loadProject(name string) (*project.Project, error) {
	for _, b := range project.BuiltinNames() {
		if b == name {
			return project.Builtin(name)
		}
	}
	data, err := os.ReadFile(name)
	if err != nil {
		return nil, fmt.Errorf("%q is neither a built-in project (%v) nor a readable file: %w",
			name, project.BuiltinNames(), err)
	}
	var p project.Project
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", name, err)
	}
	return &p, nil
}

// projectFlags registers the common -project/-alg flags.
func projectFlags(fs *flag.FlagSet) (proj, alg *string) {
	proj = fs.String("project", "lu3x3", "built-in project name or JSON file")
	alg = fs.String("alg", "mh", "scheduler: serial, hlfet, etf, ish, mh, dsh, pack, bsp")
	return
}

func openEnv(proj string) (*core.Environment, error) {
	p, err := loadProject(proj)
	if err != nil {
		return nil, err
	}
	return core.Open(p)
}

func cmdList() error {
	fmt.Println("built-in projects:")
	for _, n := range project.BuiltinNames() {
		fmt.Println("  ", n)
	}
	fmt.Println("schedulers:")
	for _, s := range sched.All() {
		fmt.Println("  ", s.Name())
	}
	fmt.Println("topology specs: hypercube:D mesh:RxC torus:RxC tree:BxL star:N ring:N chain:N full:N")
	return nil
}

func cmdShow(args []string) error {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	proj := fs.String("project", "lu3x3", "project")
	dot := fs.Bool("dot", false, "emit Graphviz dot instead of ASCII")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := loadProject(*proj)
	if err != nil {
		return err
	}
	if *dot {
		fmt.Print(p.Design.DOT())
		return nil
	}
	fmt.Print(p.Design.ASCII())
	for _, n := range p.Design.Nodes() {
		if n.Kind == graph.KindSub {
			fmt.Printf("\nexpansion of <<%s>>:\n", n.ID)
			fmt.Print(n.Sub.ASCII())
		}
	}
	fmt.Println("\nmachine:", p.Machine)
	flat, err := p.Design.Flatten()
	if err != nil {
		return err
	}
	fmt.Println("flattened:", flat.Graph.Summary())
	return nil
}

func cmdTopology(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("topology: need a spec like hypercube:3")
	}
	topo, err := machine.ParseTopology(args[0])
	if err != nil {
		return err
	}
	fmt.Print(topo.ASCII())
	fmt.Printf("diameter %d, avg distance %.2f, %d links\n", topo.Diameter(), topo.AvgDist(), topo.NumLinks())
	return nil
}

func cmdSchedule(args []string) error {
	fs := flag.NewFlagSet("schedule", flag.ExitOnError)
	proj, alg := projectFlags(fs)
	mspec := fs.String("machine", "", "override machine topology (spec string)")
	csv := fs.Bool("csv", false, "emit slots as CSV")
	svg := fs.String("svg", "", "write an SVG Gantt chart to this file")
	jsonOut := fs.String("json", "", "write the full schedule document to this file")
	report := fs.Bool("report", false, "print a per-processor utilisation table")
	width := fs.Int("width", 72, "chart width in characters")
	workers := fs.Int("workers", 0, "schedule-construction workers (0 = auto, 1 = serial); the schedule is identical either way")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of schedule construction to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile taken after scheduling to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	env, err := openEnv(*proj)
	if err != nil {
		return err
	}
	m := env.Project.Machine
	if *mspec != "" {
		topo, err := machine.ParseTopology(*mspec)
		if err != nil {
			return err
		}
		if m, err = m.Scale(topo); err != nil {
			return err
		}
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	sc, err := env.ScheduleOnWorkers(*alg, m, *workers)
	if err != nil {
		return err
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "wrote heap profile to", *memprofile)
	}
	if *csv {
		fmt.Print(gantt.CSV(sc))
		return nil
	}
	fmt.Print(gantt.Chart(sc, *width))
	if *report {
		fmt.Print(gantt.Report(sc))
	} else {
		msgs, words := sc.CommVolume()
		fmt.Printf("%d messages carrying %d words; utilization %.0f%%\n", msgs, words, 100*sc.Utilization())
	}
	if *svg != "" {
		if err := os.WriteFile(*svg, []byte(gantt.SVG(sc)), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", *svg)
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(sc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", *jsonOut)
	}
	return nil
}

func cmdSpeedup(args []string) error {
	fs := flag.NewFlagSet("speedup", flag.ExitOnError)
	proj, alg := projectFlags(fs)
	dims := fs.String("dims", "0,1,2,3", "hypercube dimensions, comma separated")
	if err := fs.Parse(args); err != nil {
		return err
	}
	env, err := openEnv(*proj)
	if err != nil {
		return err
	}
	var dd []int
	for _, s := range strings.Split(*dims, ",") {
		d, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return fmt.Errorf("bad dimension %q", s)
		}
		dd = append(dd, d)
	}
	pts, err := env.SpeedupCurve(*alg, dd)
	if err != nil {
		return err
	}
	fmt.Print(gantt.Speedup(pts, 10))
	return nil
}

func cmdSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	proj, alg := projectFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	env, err := openEnv(*proj)
	if err != nil {
		return err
	}
	sc, err := env.Schedule(*alg)
	if err != nil {
		return err
	}
	tr, err := exec.Simulate(sc)
	if err != nil {
		return err
	}
	chart, err := gantt.FromTrace(tr, sc.Machine.NumPE(), 72)
	if err != nil {
		return err
	}
	fmt.Print(chart)
	st, err := tr.Summarize(sc.Machine.NumPE())
	if err != nil {
		return err
	}
	fmt.Printf("simulated: %d tasks (+%d duplicates), %d messages, utilization %.0f%%\n",
		st.TasksRun, st.DupsRun, st.Msgs, 100*st.Utilization)
	return nil
}

func cmdAnimate(args []string) error {
	fs := flag.NewFlagSet("animate", flag.ExitOnError)
	proj, alg := projectFlags(fs)
	frames := fs.Int("frames", 8, "number of animation frames")
	if err := fs.Parse(args); err != nil {
		return err
	}
	env, err := openEnv(*proj)
	if err != nil {
		return err
	}
	sc, err := env.Schedule(*alg)
	if err != nil {
		return err
	}
	tr, err := exec.Simulate(sc)
	if err != nil {
		return err
	}
	reel, err := gantt.Animation(tr, sc.Machine.NumPE(), *frames)
	if err != nil {
		return err
	}
	fmt.Print(reel)
	return nil
}

func cmdRehearse(args []string) error {
	fs := flag.NewFlagSet("rehearse", flag.ExitOnError)
	proj := fs.String("project", "lu3x3", "project")
	if err := fs.Parse(args); err != nil {
		return err
	}
	env, err := openEnv(*proj)
	if err != nil {
		return err
	}
	reh, err := env.Rehearse()
	if err != nil {
		return err
	}
	fmt.Printf("rehearsed %d tasks, %d measured ops total\n", len(reh.Tasks), reh.TotalOps)
	for _, tr := range reh.Tasks {
		fmt.Printf("  %-16s %6d ops\n", tr.Task, tr.Ops)
		for _, line := range tr.Printed {
			fmt.Println("     >", line)
		}
	}
	printOutputs(reh.Outputs)
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	proj, alg := projectFlags(fs)
	virtual := fs.Bool("virtual", false, "stamp the trace in deterministic virtual time")
	chart := fs.Bool("chart", false, "draw the executed trace as a Gantt chart")
	faults := fs.String("faults", "", `inject faults: "rand" or a spec like "crash:1@0,drop:a->b:u" (see banger help)`)
	faultSeed := fs.Int64("fault-seed", 1, "seed for -faults rand")
	grace := fs.Float64("grace", 0, "watchdog grace factor over predicted arrival times (0 = machine default)")
	retry := fs.Bool("retry", false, "acknowledged delivery with retransmission (absorbs drops/dups)")
	dist := fs.String("dist", "", "distribute over running workers: comma-separated host:port list")
	calibrate := fs.Bool("calibrate", false, "with -dist: measure wire latency and recalibrate the machine model before scheduling")
	peerTimeout := fs.Duration("peer-timeout", 3*time.Second, "with -dist: silence budget before a worker is declared dead")
	heartbeat := fs.Duration("heartbeat", 250*time.Millisecond, "with -dist: keepalive cadence")
	mesh := fs.Bool("mesh", true, "with -dist: workers exchange data frames peer-to-peer instead of relaying through the coordinator")
	flushEvery := fs.Duration("flush-interval", 0, "with -dist: frame-coalescing window for batched data frames (0 = default 200µs)")
	control := fs.String("control", "", "with -dist: listen address for fleet control (worker -join announces, banger drain)")
	minWorkers := fs.Int("min-workers", 0, "with -dist: refuse drains that would leave fewer live workers (0 = only forbid draining the last one)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	env, err := openEnv(*proj)
	if err != nil {
		return err
	}

	// Ctrl-C cancels the run and, in distributed mode, tears the
	// workers down cleanly instead of leaving them mid-run.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var addrs []string
	if *dist != "" {
		for _, a := range strings.Split(*dist, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		if len(addrs) == 0 {
			return fmt.Errorf("-dist needs at least one worker address")
		}
	}

	m := env.Project.Machine
	if *calibrate {
		if len(addrs) == 0 {
			return fmt.Errorf("-calibrate needs -dist workers to measure against")
		}
		probe := &wire.Coordinator{Transport: wire.TCP(), Addrs: addrs}
		cal, err := probe.Calibrate(ctx, 8)
		if err != nil {
			return fmt.Errorf("calibrating against %s: %w", addrs[0], err)
		}
		fmt.Printf("measured wire: message startup %dus, per-word %dus\n", cal.MsgStartup, cal.WordTime)
		if m, err = m.Calibrated(cal); err != nil {
			return err
		}
	}
	sc, err := env.ScheduleOn(*alg, m)
	if err != nil {
		return err
	}

	runner := &exec.Runner{VirtualTime: *virtual, Retry: *retry, Grace: *grace,
		Inputs: env.Project.Inputs}
	switch {
	case *faults == "":
	case *faults == "rand":
		runner.Faults = exec.RandomFaults(*faultSeed, sc)
		if runner.Faults == nil {
			fmt.Println("schedule offers nothing to break; running fault-free")
		} else {
			fmt.Printf("injecting seeded faults: %s\n", runner.Faults)
		}
	default:
		if runner.Faults, err = exec.ParseFaults(*faults); err != nil {
			return err
		}
	}

	var res *exec.Result
	if len(addrs) > 0 {
		co := &wire.Coordinator{
			Transport: wire.TCP(), Addrs: addrs, Runner: runner,
			HeartbeatEvery: *heartbeat, PeerTimeout: *peerTimeout,
			Mesh: *mesh, FlushEvery: *flushEvery,
			Control: *control, MinWorkers: *minWorkers,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "dist: "+format+"\n", args...)
			},
		}
		res, err = co.Run(ctx, sc, env.Flat)
	} else {
		res, err = runner.RunContext(ctx, sc, env.Flat)
	}
	if err != nil {
		return err
	}
	st, err := res.Trace.Summarize(sc.Machine.NumPE())
	if err != nil {
		return err
	}
	if len(addrs) > 0 {
		fmt.Printf("ran %d tasks (+%d duplicates) on %d PEs across %d workers in %v (%d bytes on the wire)\n",
			st.TasksRun, st.DupsRun, sc.Machine.NumPE(), st.Peers, res.Elapsed, st.WireBytes)
		if st.PeersLost > 0 {
			fmt.Printf("lost %d worker(s) mid-run; recovery completed on the survivors\n", st.PeersLost)
		}
	} else {
		fmt.Printf("ran %d tasks (+%d duplicates) on %d goroutine PEs in %v\n",
			st.TasksRun, st.DupsRun, sc.Machine.NumPE(), res.Elapsed)
	}
	if st.Faults > 0 || st.Retries > 0 || st.Rescheduled > 0 {
		fmt.Printf("survived %d injected faults: %d retries, %d tasks rescheduled by recovery\n",
			st.Faults, st.Retries, st.Rescheduled)
	}
	if *virtual {
		fmt.Printf("virtual makespan %v (schedule predicted %v)\n", res.Trace.Makespan(), sc.Makespan())
	}
	if *chart {
		out, err := gantt.FromTrace(res.Trace, sc.Machine.NumPE(), 72)
		if err != nil {
			return err
		}
		fmt.Print(out)
	}
	for _, line := range res.Printed {
		fmt.Println("  >", line)
	}
	printOutputs(res.Outputs)
	return nil
}

// cmdWorker runs a worker daemon: it hosts a share of the processors
// for a coordinator running "banger run -dist". The daemon keeps
// serving runs until interrupted.
func cmdWorker(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:9040", "address to listen on (port 0 picks a free one)")
	join := fs.String("join", "", "control address of a running coordinator; announce this worker for a mid-run elastic join")
	quiet := fs.Bool("quiet", false, "suppress per-run log lines")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	opts := wire.WorkerOptions{}
	if !*quiet {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "worker: "+format+"\n", args...)
		}
	}
	return wire.ServeWorker(ctx, wire.TCP(), *listen, opts, func(bound string) {
		// The bound address goes to stdout so scripts (and the
		// integration tests) can pick up a ":0" port.
		fmt.Printf("listening on %s\n", bound)
		if *join != "" {
			// Keep announcing for the daemon's whole life: before the
			// coordinator is up the dial fails quietly, once adopted the
			// announce is an idempotent no-op, and after a drain the next
			// announce re-enters the fleet.
			// A tight cadence matters: the coordinator only accepts
			// joins while the run has live work to hand over, so a slow
			// loop can miss the window a recovery opens.
			go wire.AnnounceLoop(ctx, wire.TCP(), *join, bound, 500*time.Millisecond, opts.Logf)
		}
	})
}

// cmdDrain asks a running coordinator (via its -control listener) to
// gracefully evacuate one worker: the worker finishes in-flight slots,
// hands its state over, and departs without triggering crash recovery.
func cmdDrain(args []string) error {
	fs := flag.NewFlagSet("drain", flag.ExitOnError)
	control := fs.String("control", "", "the run's control address (banger run -dist -control ...)")
	worker := fs.Int("worker", -1, "worker index to drain (as shown in dist: log lines)")
	addr := fs.String("addr", "", "worker listen address to drain (alternative to -worker)")
	timeout := fs.Duration("timeout", 30*time.Second, "give up if the drain has not completed in this long")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *control == "" {
		return fmt.Errorf("drain: -control is required")
	}
	if (*worker < 0) == (*addr == "") {
		return fmt.Errorf("drain: name the worker with exactly one of -worker or -addr")
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if err := wire.Drain(ctx, wire.TCP(), *control, *worker, *addr); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if *addr != "" {
		fmt.Printf("worker %s drained\n", *addr)
	} else {
		fmt.Printf("worker %d drained\n", *worker)
	}
	return nil
}

// printOutputs prints an environment's bindings sorted by name.
func printOutputs(outputs pits.Env) {
	keys := make([]string, 0, len(outputs))
	for k := range outputs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Println("outputs:")
	for _, k := range keys {
		fmt.Printf("  %s = %s\n", k, outputs[k])
	}
}

func cmdCalc(args []string) error {
	fs := flag.NewFlagSet("calc", flag.ExitOnError)
	proj := fs.String("project", "newton-sqrt", "project")
	task := fs.String("task", "sqrt", "task id in the flattened design")
	run := fs.Bool("run", true, "press RUN for instant feedback")
	if err := fs.Parse(args); err != nil {
		return err
	}
	env, err := openEnv(*proj)
	if err != nil {
		return err
	}
	panel, err := env.CalculatorFor(graph.NodeID(*task))
	if err != nil {
		return err
	}
	if *run {
		if err := panel.Press("RUN"); err != nil {
			fmt.Fprintln(os.Stderr, "RUN:", err)
		}
	}
	fmt.Print(calc.Render(panel))
	return nil
}

func cmdCodegen(args []string) error {
	fs := flag.NewFlagSet("codegen", flag.ExitOnError)
	proj, alg := projectFlags(fs)
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	env, err := openEnv(*proj)
	if err != nil {
		return err
	}
	sc, err := env.Schedule(*alg)
	if err != nil {
		return err
	}
	src, err := env.GenerateCode(sc)
	if err != nil {
		return err
	}
	if *out == "" {
		fmt.Print(src)
		return nil
	}
	if err := os.WriteFile(*out, []byte(src), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", *out)
	return nil
}

func cmdDemo(args []string) error {
	fmt.Println("Banger demo: the paper's LU decomposition example, end to end.")
	env, err := core.OpenBuiltin("lu3x3")
	if err != nil {
		return err
	}
	fmt.Println("\n--- Step 1: the PITL design (Figure 1) ---")
	fmt.Print(env.Project.Design.ASCII())
	fmt.Println("\n--- Step 2: the target machine ---")
	fmt.Println(env.Project.Machine)
	fmt.Println("\n--- Step 3: one PITS task through the calculator (Figure 4 metaphor) ---")
	panel, err := env.CalculatorFor("fl21")
	if err != nil {
		return err
	}
	if err := panel.Press("RUN"); err != nil {
		return err
	}
	fmt.Print(calc.Render(panel))
	fmt.Println("\n--- Step 4: schedule and predict (Figure 3) ---")
	sc, err := env.Schedule("mh")
	if err != nil {
		return err
	}
	fmt.Print(gantt.Chart(sc, 72))
	pts, err := env.SpeedupCurve("mh", []int{0, 1, 2, 3})
	if err != nil {
		return err
	}
	fmt.Print(gantt.Speedup(pts, 8))
	fmt.Println("\n--- Step 5: run it for real ---")
	res, err := env.Run(sc)
	if err != nil {
		return err
	}
	keys := make([]string, 0, len(res.Outputs))
	for k := range res.Outputs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %s = %s\n", k, res.Outputs[k])
	}
	fmt.Println("\n(x = [1, 2, 3] solves the built-in system Ax=b.)")
	return nil
}
