package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	neturl "net/url"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"sync"
	"syscall"
	"time"

	"repro/internal/serve"
)

// cmdBatch is the fan-out client of `banger serve`: it submits every
// named project concurrently and prints the results in serial argument
// order, byte-identical to what `banger run` prints for each — the
// service equivalent of running them one by one.
func cmdBatch(args []string) error {
	fs := flag.NewFlagSet("batch", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:9080", "base URL of the control plane")
	alg := fs.String("alg", "", "scheduler (empty = the server's default)")
	jobs := fs.Int("j", 4, "concurrent submissions in flight")
	tenant := fs.String("tenant", "", "X-Tenant header for per-tenant accounting")
	predict := fs.Bool("predict", false, "schedule-only: report predicted makespan and speedup, skip execution")
	timeout := fs.Duration("timeout", 5*time.Minute, "per-run budget including 429 retries")
	if err := fs.Parse(args); err != nil {
		return err
	}
	projects := fs.Args()
	if len(projects) == 0 {
		return fmt.Errorf("batch: name at least one project (built-in or JSON file)")
	}
	if *jobs < 1 {
		*jobs = 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Fan out under a concurrency cap; results land in argument order.
	results := make([]*serve.RunResponse, len(projects))
	errs := make([]error, len(projects))
	sem := make(chan struct{}, *jobs)
	var wg sync.WaitGroup
	for i, name := range projects {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = submitRun(ctx, *addr, name, *alg, *tenant, *predict, *timeout)
		}(i, name)
	}
	wg.Wait()

	// Serial argument order, regardless of completion order.
	var failed int
	for i, name := range projects {
		if errs[i] != nil {
			failed++
			fmt.Printf("== %s failed: %v\n", name, errs[i])
			continue
		}
		rr := results[i]
		fmt.Printf("== %s (%s, cache %s, %v)\n", name, rr.Algorithm, rr.Cache,
			time.Duration(rr.ElapsedUS)*time.Microsecond)
		if *predict {
			fmt.Printf("  predicted: makespan %v on %d PEs, speedup %.2f, %d msgs\n",
				time.Duration(rr.MakespanUS)*time.Microsecond, rr.PEs, rr.Speedup, rr.Msgs)
			continue
		}
		for _, line := range rr.Printed {
			fmt.Println("  >", line)
		}
		keys := make([]string, 0, len(rr.Outputs))
		for k := range rr.Outputs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Println("outputs:")
		for _, k := range keys {
			fmt.Printf("  %s = %s\n", k, rr.Outputs[k])
		}
	}
	if failed > 0 {
		return fmt.Errorf("batch: %d of %d runs failed", failed, len(projects))
	}
	return nil
}

// submitRun posts one project, obeying 429 backpressure: the server's
// Retry-After is honored until the per-run budget expires.
func submitRun(ctx context.Context, addr, name, alg, tenant string, predict bool, budget time.Duration) (*serve.RunResponse, error) {
	p, err := loadProject(name)
	if err != nil {
		return nil, err
	}
	body, err := json.Marshal(p)
	if err != nil {
		return nil, err
	}
	q := neturl.Values{}
	if alg != "" {
		q.Set("alg", alg)
	}
	if predict {
		q.Set("mode", "schedule")
	}
	url := addr + "/run"
	if len(q) > 0 {
		url += "?" + q.Encode()
	}
	ctx, cancel := context.WithTimeout(ctx, budget)
	defer cancel()
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		if tenant != "" {
			req.Header.Set("X-Tenant", tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			// Saturated: wait as told and resubmit.
			wait := 250 * time.Millisecond
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
					wait = time.Duration(secs) * time.Second
				}
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			select {
			case <-time.After(wait):
				continue
			case <-ctx.Done():
				return nil, fmt.Errorf("%s: gave up waiting for capacity: %w", name, ctx.Err())
			}
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			var e struct {
				Error string `json:"error"`
			}
			json.NewDecoder(resp.Body).Decode(&e)
			return nil, fmt.Errorf("%s: server said %s: %s", name, resp.Status, e.Error)
		}
		var rr serve.RunResponse
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			return nil, fmt.Errorf("%s: decoding response: %w", name, err)
		}
		return &rr, nil
	}
}
