package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/conform"
	"repro/internal/machine"
)

// cmdConform runs the differential conformance harness: seeded random
// cases through the analytic simulator, the virtual-time runner, and
// the two distributed backends, cross-checking every oracle; or, with
// -repro, replays a previously written repro directory.
func cmdConform(args []string) error {
	fs := flag.NewFlagSet("conform", flag.ExitOnError)
	seeds := fs.Int64("seeds", 25, "number of consecutive seeds to run")
	start := fs.Int64("start", 0, "first seed")
	jobs := fs.Int("jobs", 4, "cases run concurrently")
	out := fs.String("out", "", "directory for repro dirs of failing cases")
	skew := fs.Int64("skew-comm", 0, "µs added to the runner engine's message startup (deliberate model skew; expect divergences)")
	budget := fs.Int("shrink-budget", 0, "max re-executions while minimizing a failure (0 = default)")
	multi := fs.Int64("multi", 0, "also run the multi-run concurrency scenario for every Nth seed (0 = off)")
	repro := fs.String("repro", "", "replay a repro directory instead of sweeping")
	if err := fs.Parse(args); err != nil {
		return err
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	if *repro != "" {
		rep, err := conform.Replay(ctx, *repro)
		if err != nil {
			return err
		}
		fmt.Printf("replayed %s: seed=%d heuristic=%s machine=%s\n",
			*repro, rep.Case.Seed, rep.Case.Heuristic, rep.Case.Machine.Name)
		if !rep.Failed() {
			fmt.Println("PASS: all oracles held")
			return nil
		}
		fmt.Printf("FAIL: %d divergence(s)\n", len(rep.Divergences))
		for _, d := range rep.Divergences {
			fmt.Printf("  %s\n", d)
		}
		return fmt.Errorf("repro still diverges")
	}

	res := conform.Sweep(ctx, conform.SweepOptions{
		Start: *start, Seeds: *seeds, Jobs: *jobs,
		OutDir:       *out,
		SkewComm:     machine.Time(*skew),
		ShrinkBudget: *budget,
		MultiEvery:   *multi,
		Log: func(format string, a ...any) {
			fmt.Printf(format+"\n", a...)
		},
	})
	fmt.Printf("conform: %d case(s), %d multi scenario(s), %d divergence(s), %d harness error(s)\n",
		res.Ran, res.MultiRan, len(res.Failures)+len(res.MultiFailures), len(res.Errors))
	for _, err := range res.Errors {
		fmt.Printf("  error: %v\n", err)
	}
	for i, rep := range res.Failures {
		fmt.Printf("  seed %d: %d divergence(s) after minimization\n",
			rep.Case.Seed, len(rep.Divergences))
		for _, d := range rep.Divergences {
			fmt.Printf("    %s\n", d)
		}
		if res.ReproDirs[i] != "" {
			fmt.Printf("    repro: %s (replay: banger conform -repro %s)\n",
				res.ReproDirs[i], res.ReproDirs[i])
		}
	}
	for i, rep := range res.MultiFailures {
		fmt.Printf("  multi seed %d: %d divergence(s) after minimization (%d concurrent runs)\n",
			rep.Multi.Seed, len(rep.Divergences), len(rep.Multi.Cases))
		for _, d := range rep.Divergences {
			fmt.Printf("    %s\n", d)
		}
		if res.MultiDirs[i] != "" {
			fmt.Printf("    repro: %s (sub-cases replay solo: banger conform -repro %s/case-K)\n",
				res.MultiDirs[i], res.MultiDirs[i])
		}
	}
	if res.Failed() {
		return fmt.Errorf("%d of %d cases diverged",
			len(res.Failures)+len(res.MultiFailures), res.Ran+res.MultiRan)
	}
	return nil
}
