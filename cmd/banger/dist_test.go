package main

import (
	"bufio"
	"context"
	"fmt"
	"os"
	goexec "os/exec"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/trace"
	"repro/internal/wire"
)

// TestHelperWorkerProcess is not a test: re-executed by the integration
// tests below with BANGER_WORKER_HELPER=1 it becomes a real `banger
// worker` daemon in its own process.
func TestHelperWorkerProcess(t *testing.T) {
	if os.Getenv("BANGER_WORKER_HELPER") != "1" {
		t.Skip("helper process for the dist integration tests")
	}
	if err := cmdWorker([]string{"-listen", "127.0.0.1:0", "-quiet"}); err != nil {
		fmt.Fprintln(os.Stderr, "worker helper:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// spawnWorkerProcess re-executes the test binary as a worker daemon and
// returns its loopback address and process handle.
func spawnWorkerProcess(t *testing.T) (string, *goexec.Cmd) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := goexec.Command(exe, "-test.run", "^TestHelperWorkerProcess$")
	cmd.Env = append(os.Environ(), "BANGER_WORKER_HELPER=1")
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if a, ok := strings.CutPrefix(sc.Text(), "listening on "); ok {
				addrCh <- a
				break
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return addr, cmd
	case <-time.After(10 * time.Second):
		t.Fatal("worker process never reported its address")
		return "", nil
	}
}

// luBaseline runs the LU project single-process and returns the
// environment, schedule and fault-free result.
func luBaseline(t *testing.T) (*core.Environment, *exec.Result) {
	t.Helper()
	env, err := core.OpenBuiltin("lu3x3")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := env.Schedule("etf")
	if err != nil {
		t.Fatal(err)
	}
	res, err := env.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	return env, res
}

// TestDistProcessLU: the paper's LU example distributed over two real
// worker processes on loopback TCP produces byte-identical outputs to
// the single-process runner.
func TestDistProcessLU(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	env, single := luBaseline(t)
	sc, err := env.Schedule("etf")
	if err != nil {
		t.Fatal(err)
	}

	a1, _ := spawnWorkerProcess(t)
	a2, _ := spawnWorkerProcess(t)
	co := &wire.Coordinator{
		Transport: wire.TCP(), Addrs: []string{a1, a2},
		Runner:         &exec.Runner{Inputs: env.Project.Inputs},
		HeartbeatEvery: 50 * time.Millisecond,
		PeerTimeout:    3 * time.Second,
		Mesh:           true, // the CLI default: worker processes dial each other
		Logf:           t.Logf,
	}
	dist, err := co.Run(context.Background(), sc, env.Flat)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dist.Outputs, single.Outputs) {
		t.Errorf("outputs diverged:\n dist   %v\n single %v", dist.Outputs, single.Outputs)
	}
	if !reflect.DeepEqual(dist.Printed, single.Printed) {
		t.Errorf("printed lines diverged:\n dist   %q\n single %q", dist.Printed, single.Printed)
	}
	// The textual rendering the CLI prints must match byte for byte.
	render := func(r *exec.Result) string {
		var b strings.Builder
		old := os.Stdout
		pr, pw, _ := os.Pipe()
		os.Stdout = pw
		printOutputs(r.Outputs)
		pw.Close()
		os.Stdout = old
		buf := make([]byte, 1<<16)
		n, _ := pr.Read(buf)
		b.Write(buf[:n])
		return b.String()
	}
	if d, s := render(dist), render(single); d != s {
		t.Errorf("rendered outputs diverged:\n dist:\n%s single:\n%s", d, s)
	}
}

// TestDistProcessKillWorker: SIGKILLing one worker process mid-run
// triggers heartbeat-loss recovery and the run completes on the
// survivor with the fault-free outputs.
func TestDistProcessKillWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	env, single := luBaseline(t)
	sc, err := env.Schedule("etf")
	if err != nil {
		t.Fatal(err)
	}

	// Hold the run open with a wall-time delay on a message crossing
	// the two worker blocks, so the kill lands mid-run while the
	// consumer's worker is waiting.
	numPE := sc.Machine.NumPE()
	blocks := wire.Partition(numPE, 2)
	workerOf := make([]int, numPE)
	for i, block := range blocks {
		for _, pe := range block {
			workerOf[pe] = i
		}
	}
	victim := -1
	var spec string
	for _, msg := range sc.Msgs {
		if workerOf[msg.FromPE] != workerOf[msg.ToPE] {
			victim = workerOf[msg.ToPE]
			spec = fmt.Sprintf("delay:%s->%s:%s@2000000", msg.From, msg.To, msg.Var)
			break
		}
	}
	if victim < 0 {
		t.Skip("LU schedule has no cross-worker message to delay")
	}
	plan, err := exec.ParseFaults(spec)
	if err != nil {
		t.Fatal(err)
	}

	a1, c1 := spawnWorkerProcess(t)
	a2, c2 := spawnWorkerProcess(t)
	addrs := []string{a1, a2}
	victimCmd := []*goexec.Cmd{c1, c2}[victim]

	go func() {
		time.Sleep(400 * time.Millisecond)
		victimCmd.Process.Signal(syscall.SIGKILL)
	}()

	co := &wire.Coordinator{
		Transport: wire.TCP(), Addrs: addrs,
		// The watchdog floor sits above the injected 2s delay so the
		// kill is detected by heartbeat loss, not a receive watchdog.
		Runner: &exec.Runner{Inputs: env.Project.Inputs, Faults: plan,
			WatchdogMin: 10 * time.Second},
		HeartbeatEvery: 50 * time.Millisecond,
		PeerTimeout:    600 * time.Millisecond,
		Mesh:           true, // the killed process is also a mesh peer
		Logf:           t.Logf,
	}
	dist, err := co.Run(context.Background(), sc, env.Flat)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dist.Outputs, single.Outputs) {
		t.Errorf("outputs diverged after losing a worker:\n dist   %v\n single %v", dist.Outputs, single.Outputs)
	}
	if !reflect.DeepEqual(dist.Printed, single.Printed) {
		t.Errorf("printed lines diverged after losing a worker:\n dist   %q\n single %q", dist.Printed, single.Printed)
	}
	lost, rescheduled := 0, 0
	for _, e := range dist.Trace.Events {
		switch e.Kind {
		case trace.PeerLost:
			lost++
		case trace.TaskRescheduled:
			rescheduled++
		}
	}
	if lost == 0 {
		t.Error("trace records no lost worker")
	}
	if rescheduled == 0 {
		t.Error("recovery rescheduled no tasks")
	}
}
