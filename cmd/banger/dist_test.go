package main

import (
	"bufio"
	"context"
	"fmt"
	"os"
	goexec "os/exec"
	"reflect"
	"sort"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/pits"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/wire"
)

// TestHelperWorkerProcess is not a test: re-executed by the integration
// tests below with BANGER_WORKER_HELPER=1 it becomes a real `banger
// worker` daemon in its own process.
func TestHelperWorkerProcess(t *testing.T) {
	if os.Getenv("BANGER_WORKER_HELPER") != "1" {
		t.Skip("helper process for the dist integration tests")
	}
	args := []string{"-listen", "127.0.0.1:0"}
	if join := os.Getenv("BANGER_WORKER_JOIN"); join != "" {
		// Keep the announce loop's log lines: rejections explain a
		// joiner that never enters the run.
		args = append(args, "-join", join)
	} else {
		args = append(args, "-quiet")
	}
	if err := cmdWorker(args); err != nil {
		fmt.Fprintln(os.Stderr, "worker helper:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// spawnWorkerProcess re-executes the test binary as a worker daemon and
// returns its loopback address and process handle.
func spawnWorkerProcess(t *testing.T) (string, *goexec.Cmd) {
	return spawnWorker(t, "")
}

// spawnWorker is spawnWorkerProcess with an optional -join control
// address: the daemon announces itself to a running coordinator.
func spawnWorker(t *testing.T, join string) (string, *goexec.Cmd) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := goexec.Command(exe, "-test.run", "^TestHelperWorkerProcess$")
	cmd.Env = append(os.Environ(), "BANGER_WORKER_HELPER=1")
	if join != "" {
		cmd.Env = append(cmd.Env, "BANGER_WORKER_JOIN="+join)
	}
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if a, ok := strings.CutPrefix(sc.Text(), "listening on "); ok {
				addrCh <- a
				break
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return addr, cmd
	case <-time.After(10 * time.Second):
		t.Fatal("worker process never reported its address")
		return "", nil
	}
}

// luBaseline runs the LU project single-process and returns the
// environment, schedule and fault-free result.
func luBaseline(t *testing.T) (*core.Environment, *exec.Result) {
	t.Helper()
	env, err := core.OpenBuiltin("lu3x3")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := env.Schedule("etf")
	if err != nil {
		t.Fatal(err)
	}
	res, err := env.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	return env, res
}

// TestDistProcessLU: the paper's LU example distributed over two real
// worker processes on loopback TCP produces byte-identical outputs to
// the single-process runner.
func TestDistProcessLU(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	env, single := luBaseline(t)
	sc, err := env.Schedule("etf")
	if err != nil {
		t.Fatal(err)
	}

	a1, _ := spawnWorkerProcess(t)
	a2, _ := spawnWorkerProcess(t)
	co := &wire.Coordinator{
		Transport: wire.TCP(), Addrs: []string{a1, a2},
		Runner:         &exec.Runner{Inputs: env.Project.Inputs},
		HeartbeatEvery: 50 * time.Millisecond,
		PeerTimeout:    3 * time.Second,
		Mesh:           true, // the CLI default: worker processes dial each other
		Logf:           t.Logf,
	}
	dist, err := co.Run(context.Background(), sc, env.Flat)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dist.Outputs, single.Outputs) {
		t.Errorf("outputs diverged:\n dist   %v\n single %v", dist.Outputs, single.Outputs)
	}
	if !reflect.DeepEqual(dist.Printed, single.Printed) {
		t.Errorf("printed lines diverged:\n dist   %q\n single %q", dist.Printed, single.Printed)
	}
	// The textual rendering the CLI prints must match byte for byte.
	render := func(r *exec.Result) string {
		var b strings.Builder
		old := os.Stdout
		pr, pw, _ := os.Pipe()
		os.Stdout = pw
		printOutputs(r.Outputs)
		pw.Close()
		os.Stdout = old
		buf := make([]byte, 1<<16)
		n, _ := pr.Read(buf)
		b.Write(buf[:n])
		return b.String()
	}
	if d, s := render(dist), render(single); d != s {
		t.Errorf("rendered outputs diverged:\n dist:\n%s single:\n%s", d, s)
	}
}

// TestDistProcessKillWorker: SIGKILLing one worker process mid-run
// triggers heartbeat-loss recovery and the run completes on the
// survivor with the fault-free outputs.
func TestDistProcessKillWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	env, single := luBaseline(t)
	sc, err := env.Schedule("etf")
	if err != nil {
		t.Fatal(err)
	}

	// Hold the run open with a wall-time delay on a message crossing
	// the two worker blocks, so the kill lands mid-run while the
	// consumer's worker is waiting.
	// The PE blocks come from the same traffic-aware placement the
	// coordinator uses, so the delayed edge really crosses processes.
	workerOf := sched.Place(sc, 2)
	victim := -1
	var spec string
	for _, msg := range sc.Msgs {
		if workerOf[msg.FromPE] != workerOf[msg.ToPE] {
			victim = workerOf[msg.ToPE]
			spec = fmt.Sprintf("delay:%s->%s:%s@2000000", msg.From, msg.To, msg.Var)
			break
		}
	}
	if victim < 0 {
		t.Skip("LU schedule has no cross-worker message to delay")
	}
	plan, err := exec.ParseFaults(spec)
	if err != nil {
		t.Fatal(err)
	}

	a1, c1 := spawnWorkerProcess(t)
	a2, c2 := spawnWorkerProcess(t)
	addrs := []string{a1, a2}
	victimCmd := []*goexec.Cmd{c1, c2}[victim]

	go func() {
		time.Sleep(400 * time.Millisecond)
		victimCmd.Process.Signal(syscall.SIGKILL)
	}()

	co := &wire.Coordinator{
		Transport: wire.TCP(), Addrs: addrs,
		// The watchdog floor sits above the injected 2s delay so the
		// kill is detected by heartbeat loss, not a receive watchdog.
		Runner: &exec.Runner{Inputs: env.Project.Inputs, Faults: plan,
			WatchdogMin: 10 * time.Second},
		HeartbeatEvery: 50 * time.Millisecond,
		PeerTimeout:    600 * time.Millisecond,
		Mesh:           true, // the killed process is also a mesh peer
		Logf:           t.Logf,
	}
	dist, err := co.Run(context.Background(), sc, env.Flat)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dist.Outputs, single.Outputs) {
		t.Errorf("outputs diverged after losing a worker:\n dist   %v\n single %v", dist.Outputs, single.Outputs)
	}
	if !reflect.DeepEqual(dist.Printed, single.Printed) {
		t.Errorf("printed lines diverged after losing a worker:\n dist   %q\n single %q", dist.Printed, single.Printed)
	}
	lost, rescheduled := 0, 0
	for _, e := range dist.Trace.Events {
		switch e.Kind {
		case trace.PeerLost:
			lost++
		case trace.TaskRescheduled:
			rescheduled++
		}
	}
	if lost == 0 {
		t.Error("trace records no lost worker")
	}
	if rescheduled == 0 {
		t.Error("recovery rescheduled no tasks")
	}
}

// elasticDesign builds a layered design with real routines and printed
// output, the same shape the wire-level elastic tests use: every layer
// mixes neighbouring columns, so downstream cross-worker messages exist
// at every depth.
func elasticDesign(t *testing.T, layers, width int) (*graph.Flat, pits.Env) {
	t.Helper()
	g := graph.New("elastic-calc")
	g.MustAddStorage("IN", "x")
	for l := 0; l < layers; l++ {
		for i := 0; i < width; i++ {
			id := graph.NodeID(fmt.Sprintf("t%d_%d", l, i))
			n := g.MustAddTask(id, string(id), int64(10+(l*7+i*3)%20))
			v := fmt.Sprintf("v%d_%d", l, i)
			if l == 0 {
				n.Routine = fmt.Sprintf("%s = x + %d", v, i)
				g.MustConnect("IN", id, "x", 1)
				continue
			}
			left := fmt.Sprintf("v%d_%d", l-1, i)
			right := fmt.Sprintf("v%d_%d", l-1, (i+1)%width)
			n.Routine = fmt.Sprintf("%s = %s + %s * 2", v, left, right)
			g.MustConnect(graph.NodeID(fmt.Sprintf("t%d_%d", l-1, i)), id, left, 1)
			g.MustConnect(graph.NodeID(fmt.Sprintf("t%d_%d", l-1, (i+1)%width)), id, right, 1)
		}
	}
	snk := g.MustAddTask("snk", "sink", 20)
	terms := make([]string, width)
	for i := 0; i < width; i++ {
		terms[i] = fmt.Sprintf("v%d_%d", layers-1, i)
		g.MustConnect(graph.NodeID(fmt.Sprintf("t%d_%d", layers-1, i)), "snk", terms[i], 1)
	}
	snk.Routine = "out = " + strings.Join(terms, " + ") + "\nprint \"total \", out"
	g.MustAddStorage("OUT", "out")
	g.MustConnect("snk", "OUT", "out", 1)
	flat, err := g.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	return flat, pits.Env{"x": pits.Num(3)}
}

// holdChain builds n wall-clock delay faults on cross-worker edges at
// increasing depths of the layered design, each downstream of the
// previous hold's consumer. A pause/resume barrier re-sends held
// messages immediately (resends bypass fault injection), so a single
// hold dies at the first barrier; a chain arms its next hold only
// after the previous one releases, keeping the run open across a whole
// churn sequence. The worker in avoid is excluded from the endpoints:
// once its share migrates, an edge it hosted may become worker-local,
// and local deliveries do not pass through the fault injector.
func holdChain(t *testing.T, sc *sched.Schedule, workers, n int, usec int64, avoid int) *exec.FaultPlan {
	t.Helper()
	workerOf := sched.Place(sc, workers)
	parse := func(id string) (layer, idx int, ok bool) {
		_, err := fmt.Sscanf(id, "t%d_%d", &layer, &idx)
		return layer, idx, err == nil
	}
	type cand struct {
		msg            sched.Msg
		fl, fi, tl, ti int
		sink           bool
	}
	var cands []cand
	width := 0
	for _, m := range sc.Msgs {
		fw, tw := workerOf[m.FromPE], workerOf[m.ToPE]
		if fw == tw || fw == avoid || tw == avoid {
			continue
		}
		fl, fi, ok := parse(string(m.From))
		if !ok {
			continue
		}
		if fi+1 > width {
			width = fi + 1
		}
		c := cand{msg: m, fl: fl, fi: fi}
		if tl, ti, ok := parse(string(m.To)); ok {
			c.tl, c.ti = tl, ti
		} else if string(m.To) == "snk" {
			c.sink = true
		} else {
			continue
		}
		cands = append(cands, c)
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.fl != b.fl {
			return a.fl < b.fl
		}
		if a.msg.From != b.msg.From {
			return a.msg.From < b.msg.From
		}
		return a.msg.To < b.msg.To
	})
	plan := &exec.FaultPlan{}
	// prev is the consumer of the last accepted hold; a candidate joins
	// the chain only if its producer is (transitively) downstream: the
	// dependency cone of t(l)_c at layer l' spans indices c..c+(l'-l).
	prevSet, prevSink := false, false
	var cl, ci int
	for _, c := range cands {
		if len(plan.Faults) == n {
			break
		}
		if prevSink {
			break // nothing is downstream of the sink
		}
		if prevSet {
			if c.fl < cl || (c.fi-ci)%width < 0 || (c.fi-ci+width)%width > c.fl-cl {
				continue
			}
		}
		plan.Faults = append(plan.Faults, exec.Fault{Kind: exec.FaultDelay,
			From: c.msg.From, To: c.msg.To, Var: c.msg.Var, Delay: machine.Time(usec)})
		prevSet, prevSink, cl, ci = true, c.sink, c.tl, c.ti
	}
	if len(plan.Faults) < n {
		t.Skipf("schedule yields only %d of %d chained cross-worker holds", len(plan.Faults), n)
	}
	return plan
}

// TestDistProcessChurn drives the full elastic-fleet CLI surface over
// real processes in one run: a worker process is SIGKILLed mid-run, a
// replacement daemon started with -join announces itself to the run's
// control address and rides in during the recovery's busy window, and
// `banger drain` (the wire.Drain call it wraps) then evacuates one of
// the original survivors. Outputs must match the undisturbed
// single-process run, and exactly one departure — the kill — may look
// like a crash.
func TestDistProcessChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	// The built-in designs place too well for this test: after the
	// traffic-aware placement their schedules have no chain of
	// cross-worker messages at increasing depths. An eight-layer
	// stencil yields exactly the three chained holds the churn needs.
	flat, inputs := elasticDesign(t, 8, 3)
	topo, err := machine.ParseTopology("hypercube:3")
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New("hypercube:3", topo, machine.Params{ProcSpeed: 1, TaskStartup: 1, MsgStartup: 5, WordTime: 1})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := sched.ETF{}.Schedule(flat.Graph, m)
	if err != nil {
		t.Fatal(err)
	}
	single, err := (&exec.Runner{Inputs: inputs}).Run(sc, flat)
	if err != nil {
		t.Fatal(err)
	}
	// Three holds: one per fleet change (kill recovery, join, drain),
	// each arming only after the previous barrier releases its
	// predecessor. The delayed edges run between the two survivors so
	// the victim's death cannot release them early.
	const victim = 2
	plan := holdChain(t, sc, 3, 3, 1200000, victim)

	a1, _ := spawnWorkerProcess(t)
	a2, _ := spawnWorkerProcess(t)
	a3, c3 := spawnWorkerProcess(t)
	ctrlCh := make(chan string, 1)
	co := &wire.Coordinator{
		Transport: wire.TCP(), Addrs: []string{a1, a2, a3},
		Runner: &exec.Runner{Inputs: inputs, Faults: plan,
			WatchdogMin: 10 * time.Second},
		HeartbeatEvery: 50 * time.Millisecond,
		PeerTimeout:    600 * time.Millisecond,
		Mesh:           true,
		Control:        "127.0.0.1:0",
		ControlReady:   func(addr string) { ctrlCh <- addr },
		Logf:           t.Logf,
	}
	resCh := make(chan *exec.Result, 1)
	errCh := make(chan error, 1)
	go func() {
		res, err := co.Run(context.Background(), sc, flat)
		resCh <- res
		errCh <- err
	}()
	var ctrl string
	select {
	case ctrl = <-ctrlCh:
	case <-time.After(5 * time.Second):
		t.Fatal("control listener never came up")
	}

	// Kill the third worker process once the run is inside the first
	// hold. Heartbeat loss frees its processors and the recovery
	// re-executes its finished tasks, opening the capacity + busy
	// window the joiner needs.
	time.Sleep(200 * time.Millisecond)
	c3.Process.Signal(syscall.SIGKILL)

	// The replacement daemon announces itself via its own -join loop.
	// Poll the same control endpoint from the test until an announce
	// for its address is accepted: announcing a worker that is already
	// part of the run is an idempotent welcome, so whichever loop lands
	// first, a nil here means the join has happened.
	ja, _ := spawnWorker(t, ctrl)
	deadline := time.Now().Add(10 * time.Second)
	for {
		actx, acancel := context.WithTimeout(context.Background(), time.Second)
		err = wire.Announce(actx, wire.TCP(), ctrl, ja)
		acancel()
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("join never accepted: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// With the joiner in and the next hold armed, gracefully evacuate
	// one of the original survivors.
	time.Sleep(100 * time.Millisecond)
	dctx, dcancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer dcancel()
	for {
		err = wire.Drain(dctx, wire.TCP(), ctrl, 0, "")
		if err == nil || !strings.Contains(err.Error(), "retry") {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("drain: %v", err)
	}

	dist := <-resCh
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dist.Outputs, single.Outputs) {
		t.Errorf("outputs diverged:\n dist   %v\n single %v", dist.Outputs, single.Outputs)
	}
	if !reflect.DeepEqual(dist.Printed, single.Printed) {
		t.Errorf("printed lines diverged:\n dist   %q\n single %q", dist.Printed, single.Printed)
	}
	drained, joined, lost := 0, 0, 0
	for _, e := range dist.Trace.Events {
		switch {
		case e.Kind == trace.WorkerDrained:
			drained++
		case e.Kind == trace.PeerConnected && e.Note == "join":
			joined++
		case e.Kind == trace.PeerLost:
			lost++
		}
	}
	if drained == 0 {
		t.Error("trace records no drained worker")
	}
	if joined == 0 {
		t.Error("trace records no mid-run join")
	}
	if lost != 1 {
		t.Errorf("trace records %d lost peers, want exactly 1 (the kill); join and drain must not look like crashes", lost)
	}
}
