package main

import (
	"os"
	"strings"
	"testing"
)

// captureFig runs one experiment with stdout redirected.
func captureFig(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := r.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- b.String()
	}()
	ferr := f()
	w.Close()
	os.Stdout = old
	out := <-done
	if ferr != nil {
		t.Fatalf("experiment failed: %v\n%s", ferr, out)
	}
	return out
}

func TestFigure1(t *testing.T) {
	out := captureFig(t, figure1)
	for _, want := range []string{"Figure 1", "<<forward>>", "Expansion of <<back>>", "16 tasks"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestFigure2(t *testing.T) {
	out := captureFig(t, figure2)
	for _, want := range []string{"hypercube-3", "mesh-2x4", "tree-b2-l3", "star-8", "full-8"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestFigure3(t *testing.T) {
	out := captureFig(t, figure3)
	for _, want := range []string{"hypercube-1", "hypercube-2", "hypercube-3", "speedup vs processors", "8 PEs"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
	// Speedup at 2 PEs must exceed 1 and at 8 must not be absurd.
	if !strings.Contains(out, "speedup 1.") {
		t.Error("no plausible speedup in output")
	}
}

func TestFigure4(t *testing.T) {
	out := captureFig(t, figure4)
	for _, want := range []string{"Task: sqrt", "1.414213562", "instant feedback"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestExperimentA(t *testing.T) {
	out := captureFig(t, extA)
	for _, want := range []string{"lu3x3", "ge8", "fft16", "rand64", "CCR sweep", "dsh"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestExperimentB(t *testing.T) {
	out := captureFig(t, extB)
	if !strings.Contains(out, "msg_startup") || !strings.Contains(out, "80") {
		t.Errorf("output:\n%s", out)
	}
}

func TestExperimentC(t *testing.T) {
	out := captureFig(t, extC)
	if !strings.Contains(out, "result_ok") {
		t.Fatalf("output:\n%s", out)
	}
	if strings.Contains(out, "false") {
		t.Errorf("a run produced a wrong result:\n%s", out)
	}
}

func TestExperimentD(t *testing.T) {
	out := captureFig(t, extD)
	for _, want := range []string{"generated", "goroutines", "channels", `task "fl21"`} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestExperimentE(t *testing.T) {
	out := captureFig(t, extE)
	for _, want := range []string{"segments", "16", "lower_bound_us"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}
