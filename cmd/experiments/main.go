// Command experiments regenerates every artefact of the paper's
// evaluation (Figures 1-4) plus the ablation experiments A-D that
// DESIGN.md defines. Output is deterministic text suitable for
// comparison against EXPERIMENTS.md.
//
// Usage:
//
//	experiments [-fig 1|2|3|4|A|B|C|D|all]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"text/tabwriter"

	"repro/internal/calc"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/gantt"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/pits"
	"repro/internal/project"
	"repro/internal/sched"
)

func main() {
	fig := flag.String("fig", "all", "which figure/experiment to regenerate (1,2,3,4,A,B,C,D,all)")
	flag.Parse()
	run := func(name string, f func() error) {
		if *fig != "all" && !strings.EqualFold(*fig, name) {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	run("1", figure1)
	run("2", figure2)
	run("3", figure3)
	run("4", figure4)
	run("A", extA)
	run("B", extB)
	run("C", extC)
	run("D", extD)
	run("E", extE)
}

func header(title string) {
	fmt.Println()
	fmt.Println("=" + strings.Repeat("=", len(title)+1))
	fmt.Println("=", title)
	fmt.Println("=" + strings.Repeat("=", len(title)+1))
}

// figure1 prints the hierarchical dataflow graph of the LU design.
func figure1() error {
	header("Figure 1 — Hierarchical dataflow graph of the 3x3 LU design")
	p, err := project.LU3x3()
	if err != nil {
		return err
	}
	fmt.Println("Top level (bold nodes <<forward>>, <<back>> are decomposable):")
	fmt.Print(p.Design.ASCII())
	fmt.Println("\nExpansion of <<forward>>:")
	fmt.Print(p.Design.Node("forward").Sub.ASCII())
	fmt.Println("\nExpansion of <<back>>:")
	fmt.Print(p.Design.Node("back").Sub.ASCII())
	flat, err := p.Design.Flatten()
	if err != nil {
		return err
	}
	fmt.Println("\nFlattened:", flat.Graph.Summary())
	return nil
}

// figure2 prints the supported interconnection topologies.
func figure2() error {
	header("Figure 2 — Network interconnection topologies (8 PEs each)")
	mks := []func() (*machine.Topology, error){
		func() (*machine.Topology, error) { return machine.Hypercube(3) },
		func() (*machine.Topology, error) { return machine.Mesh(2, 4) },
		func() (*machine.Topology, error) { return machine.Tree(2, 3) },
		func() (*machine.Topology, error) { return machine.Star(8) },
		func() (*machine.Topology, error) { return machine.Full(8) },
	}
	for _, mk := range mks {
		topo, err := mk()
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(topo.ASCII())
	}
	return nil
}

// figure3 prints Gantt charts of the LU design on hypercubes of 2, 4
// and 8 processors plus the speedup-prediction chart.
func figure3() error {
	header("Figure 3 — Gantt charts and speedup prediction (LU on hypercubes)")
	env, err := core.OpenBuiltin("lu3x3")
	if err != nil {
		return err
	}
	// Figure 3 uses the designer's nominal work estimates (the paper
	// schedules before any trial run); experiment C shows the
	// calibrated variant.
	for _, dim := range []int{1, 2, 3} {
		topo, err := machine.Hypercube(dim)
		if err != nil {
			return err
		}
		m, err := env.Project.Machine.Scale(topo)
		if err != nil {
			return err
		}
		sc, err := env.ScheduleOn("mh", m)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(gantt.Chart(sc, 72))
	}
	pts, err := env.SpeedupCurve("mh", []int{0, 1, 2, 3})
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(gantt.Speedup(pts, 10))
	return nil
}

// figure4 prints the calculator panel defining the SquareRoot task.
func figure4() error {
	header("Figure 4 — Calculator panel for the SquareRoot task")
	env, err := core.OpenBuiltin("newton-sqrt")
	if err != nil {
		return err
	}
	panel, err := env.CalculatorFor("sqrt")
	if err != nil {
		return err
	}
	if err := panel.Press("CHECK"); err != nil {
		return err
	}
	if err := panel.Press("RUN"); err != nil {
		return err
	}
	fmt.Print(calc.Render(panel))
	if rep := panel.LastRun(); rep != nil {
		fmt.Printf("instant feedback: %s\n", rep)
	}
	return nil
}

// extA compares every scheduler across representative designs.
func extA() error {
	header("Experiment A — Scheduler comparison (makespan us / speedup)")
	luEnv, err := core.OpenBuiltin("lu3x3")
	if err != nil {
		return err
	}
	if _, err := luEnv.CalibrateWork(); err != nil {
		return err
	}
	fft, err := graph.FFT(16, 40, 8)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(42))
	random, err := graph.LayeredRandom(rng, graph.LayeredConfig{
		Layers: 8, Width: 8, MinWork: 10, MaxWork: 100, MinWords: 1, MaxWords: 40, Density: 0.3,
	})
	if err != nil {
		return err
	}
	designs := []struct {
		name string
		g    *graph.Graph
	}{
		{"lu3x3", luEnv.Flat.Graph},
		{"ge8", graph.GE(8, 30, 60, 8)},
		{"fft16", fft},
		{"rand64", random},
	}
	topo, err := machine.Hypercube(3)
	if err != nil {
		return err
	}
	m, err := machine.New("hypercube-8", topo, machine.DefaultParams())
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "design\t")
	for _, s := range sched.All() {
		fmt.Fprintf(w, "%s\t", s.Name())
	}
	fmt.Fprintln(w)
	for _, d := range designs {
		fmt.Fprintf(w, "%s\t", d.name)
		for _, s := range sched.All() {
			sc, err := s.Schedule(d.g, m)
			if err != nil {
				return err
			}
			if err := sc.Validate(); err != nil {
				return fmt.Errorf("%s/%s: %w", d.name, s.Name(), err)
			}
			fmt.Fprintf(w, "%d/%.2f\t", int64(sc.Makespan()), sc.Speedup())
		}
		fmt.Fprintln(w)
	}
	if err := w.Flush(); err != nil {
		return err
	}

	fmt.Println("\nCCR sweep on rand64 (communication-to-computation ratio via word time):")
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "word_time\t")
	for _, s := range sched.All() {
		fmt.Fprintf(w, "%s\t", s.Name())
	}
	fmt.Fprintln(w)
	for _, wt := range []machine.Time{0, 1, 4, 16} {
		params := machine.DefaultParams()
		params.WordTime = wt
		mm, err := machine.New("hc8", topo, params)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d\t", int64(wt))
		for _, s := range sched.All() {
			sc, err := s.Schedule(random, mm)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%.2f\t", sc.Speedup())
		}
		fmt.Fprintln(w)
	}
	return w.Flush()
}

// extB sweeps the paper's four machine characteristics on the LU design.
func extB() error {
	header("Experiment B — Machine-parameter sensitivity (LU on hypercube-8, MH)")
	env, err := core.OpenBuiltin("lu3x3")
	if err != nil {
		return err
	}
	if _, err := env.CalibrateWork(); err != nil {
		return err
	}
	topo, err := machine.Hypercube(3)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "msg_startup\tword_time\tmakespan_us\tspeedup\tPEs_used\tmsgs")
	for _, ms := range []machine.Time{0, 5, 20, 80} {
		for _, wt := range []machine.Time{0, 1, 4} {
			params := machine.Params{ProcSpeed: 1, TaskStartup: 1, MsgStartup: ms, WordTime: wt}
			m, err := machine.New("hc8", topo, params)
			if err != nil {
				return err
			}
			sc, err := env.ScheduleOn("mh", m)
			if err != nil {
				return err
			}
			msgs, _ := sc.CommVolume()
			fmt.Fprintf(w, "%d\t%d\t%d\t%.2f\t%d\t%d\n",
				int64(ms), int64(wt), int64(sc.Makespan()), sc.Speedup(), sc.UsedPEs(), msgs)
		}
	}
	return w.Flush()
}

// extC compares the simulator's prediction with a real goroutine run.
func extC() error {
	header("Experiment C — Predicted vs actual execution (LU, ETF)")
	env, err := core.OpenBuiltin("lu3x3")
	if err != nil {
		return err
	}
	if _, err := env.CalibrateWork(); err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "PEs\tpredicted_us\tsimulated_us\tvirtual_actual_us\treal_wallclock_us\tresult_ok")
	for _, dim := range []int{0, 1, 2, 3} {
		topo, err := machine.Hypercube(dim)
		if err != nil {
			return err
		}
		m, err := env.Project.Machine.Scale(topo)
		if err != nil {
			return err
		}
		sc, err := env.ScheduleOn("etf", m)
		if err != nil {
			return err
		}
		tr, err := exec.Simulate(sc)
		if err != nil {
			return err
		}
		// Virtual-time real execution: goroutines + channels, but the
		// trace clock follows the machine model.
		vr := &exec.Runner{Inputs: env.Project.Inputs, VirtualTime: true}
		vres, err := vr.Run(sc, env.Flat)
		if err != nil {
			return err
		}
		res, err := env.Run(sc)
		if err != nil {
			return err
		}
		ok := checkLU(res.Outputs) && checkLU(vres.Outputs)
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%t\n",
			m.NumPE(), int64(sc.Makespan()), int64(tr.Makespan()),
			int64(vres.Trace.Makespan()), res.Elapsed.Microseconds(), ok)
	}
	return w.Flush()
}

func checkLU(out pits.Env) bool {
	x, ok := out["x"].(pits.Vec)
	if !ok || len(x) != 3 {
		return false
	}
	want := project.LUSolution()
	for i := range want {
		d := x[i] - want[i]
		if d < -1e-9 || d > 1e-9 {
			return false
		}
	}
	return true
}

// extE scales the heat stencil with its machine: segments and ring
// grow together, and the per-processor work stays constant, so the
// speedup should track the processor count — weak scaling, the regime
// the paper's large-grain thesis targets.
func extE() error {
	header("Experiment E — Weak scaling of the heat stencil (ring = segments, MH)")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "segments\tsteps\ttasks\tmakespan_us\tspeedup\tefficiency\tlower_bound_us")
	for _, segs := range []int{2, 4, 8, 16} {
		p, err := project.HeatSized(segs, 4)
		if err != nil {
			return err
		}
		flat, err := p.Design.Flatten()
		if err != nil {
			return err
		}
		sc, err := (sched.MH{}).Schedule(flat.Graph, p.Machine)
		if err != nil {
			return err
		}
		if err := sc.Validate(); err != nil {
			return err
		}
		lb, err := sched.LowerBound(flat.Graph, p.Machine)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d\t4\t%d\t%d\t%.2f\t%.2f\t%d\n",
			segs, len(flat.Graph.Tasks()), int64(sc.Makespan()), sc.Speedup(), sc.Efficiency(), int64(lb))
	}
	return w.Flush()
}

// extD generates the standalone Go program for the scheduled LU design.
func extD() error {
	header("Experiment D — Code generation (LU, ETF on hypercube-8)")
	env, err := core.OpenBuiltin("lu3x3")
	if err != nil {
		return err
	}
	sc, err := env.Schedule("etf")
	if err != nil {
		return err
	}
	src, err := env.GenerateCode(sc)
	if err != nil {
		return err
	}
	lines := strings.Count(src, "\n")
	chans := strings.Count(src, "make(chan val")
	gos := strings.Count(src, "go func()")
	fmt.Printf("generated %d lines of Go: %d goroutines, %d channels\n", lines, gos, chans)
	var fns []string
	for _, l := range strings.Split(src, "\n") {
		if strings.HasPrefix(l, "// task") && strings.Contains(l, "implements task") {
			fns = append(fns, strings.TrimPrefix(l, "// "))
		}
	}
	sort.Strings(fns)
	for _, f := range fns {
		fmt.Println(" ", f)
	}
	fmt.Println("first lines of main():")
	if i := strings.Index(src, "func main()"); i >= 0 {
		body := src[i:]
		for j, l := range strings.Split(body, "\n") {
			if j > 8 {
				break
			}
			fmt.Println("   ", l)
		}
	}
	return nil
}
