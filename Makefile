GO ?= go

.PHONY: build test vet race verify bench bench-smoke chaos

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The runner is the only genuinely concurrent subsystem (one goroutine
# per processor, plus the schedule index and routing tables shared
# read-only); run it under the race detector. The recovery planner is
# exercised concurrently by the runner's crash handling, so its tests
# join the race pass, as do the wire transport (coordinator, worker
# daemons, reconnect relay) and the multi-process CLI integration tests.
race:
	$(GO) test -race ./internal/exec/...
	$(GO) test -race ./internal/sched/ -run Recover
	$(GO) test -race ./internal/wire/
	$(GO) test -race ./cmd/banger/

# Tier-1 verification: what every PR must keep green.
verify: build vet test race bench-smoke

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# One-iteration pass over the scheduler scaling benchmarks: catches
# crashes or pathological slowdowns in the hot path without the cost of
# a statistically meaningful benchmark run.
bench-smoke:
	$(GO) test -run=NONE -bench=SchedulerScaling -benchtime=1x .

# Chaos soak: the seeded fault-injection suite 50 times under the race
# detector — crashes, drops, duplicates, delays and corruptions against
# the recovering runtime.
chaos:
	$(GO) test -race -count=50 -run 'Fault|Crash|Random|Watchdog|Stall|Duplicate' ./internal/exec/
