GO ?= go

.PHONY: build test vet race verify bench bench-smoke bench-dist bench-serve serve-smoke chaos churn multisoak conform fuzz-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over every concurrent subsystem: the runner (one
# goroutine per processor), the full scheduler package (parallel
# candidate scans over the worker pool — the equivalence tests drive
# Workers=2 and 4 explicitly), the wire transport (coordinator, worker
# daemons, reconnect relay), the conformance harness and the
# multi-process CLI integration tests.
race:
	$(GO) test -race ./internal/exec/...
	$(GO) test -race ./internal/sched/...
	$(GO) test -race ./internal/wire/
	$(GO) test -race ./internal/conform/
	$(GO) test -race ./cmd/banger/

# Tier-1 verification: what every PR must keep green.
verify: build vet test race bench-smoke

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# One-iteration pass over the scheduler scaling benchmarks plus the
# single-process/distributed runner pair: catches crashes or
# pathological slowdowns in the hot paths without the cost of a
# statistically meaningful benchmark run. -short keeps the 32k/100k
# graphs out of the smoke pass.
bench-smoke:
	$(GO) test -run=NONE -bench=SchedulerScaling -benchtime=1x -short .
	$(GO) test -run=NONE -bench='RunnerWall|RunnerTCP' -benchtime=1x -benchmem .

# The committed scheduler baselines (BENCH_PR7.json) were measured with
# this: every heuristic over the scaling sweep, plus the 32k- and
# ~100k-task graphs for the near-linear schedulers, allocation counts
# on. The first schedule of each sub-benchmark runs before the timer,
# so numbers are steady-state (compiled view cached, arenas pooled).
# Each big size runs in its own process: a 100k-task graph plus its
# compiled view is gigabytes of string-bearing live heap, and carrying
# one size's graph through another size's measurement taxes every GC
# cycle of the op being timed (~4x slower at 100k when the 32k state
# is still live).
bench-sched:
	$(GO) test -run=NONE -bench=SchedulerScaling -benchtime=3x -benchmem -short .
	$(GO) test -run=NONE -bench='SchedulerScaling/(etf|hlfet|bsp)/rand-L200xW160$$' -benchtime=3x -benchmem -timeout 30m .
	$(GO) test -run=NONE -bench='SchedulerScaling/(etf|hlfet|bsp)/rand-L350xW290$$' -benchtime=3x -benchmem -timeout 60m .

# The committed distributed-runtime baselines (BENCH_PR6.json, and
# BENCH_PR8.json for the fleet-change barrier replans) were measured
# with this: the wall-clock runner against the TCP mesh and relay
# planes on loopback plus the elastic expand/drain replans, 15
# iterations, medians of 3 runs.
bench-dist:
	$(GO) test -run=NONE -bench='RunnerVirtual|RunnerWall|RunnerTCP|ElasticReplan' -benchtime=15x -benchmem -count=3 .

# The committed serving-layer baselines (BENCH_PR9.json, and
# BENCH_PR10.json for the fleet-backed run mode) were measured with
# this: full HTTP round trips against the control plane in both local
# request modes (schedule-only prediction and full virtual-time run),
# cold (schedule cache disabled, every submission pays the MH pass) vs
# warm (cache primed), at three concurrency levels; plus the fleet
# axis — runs executing wall-clock on a live worker fleet, {1,4,16}
# concurrent runs × {1,2,4} multiplexing daemons, with the MaxRuns=1
# serialized lease as the comparison point. Medians of 3 runs. The
# local-mode workload is the 501-task design on a 128-PE ring — the
# machine family where MH's link-contention pass is most expensive,
# i.e. the regime the schedule cache exists for.
bench-serve:
	$(GO) test -run=NONE -bench=ServeThroughput -benchtime=10x -count=3 -timeout 45m .

# Serving-layer smoke: the in-process serve tests (admission, cache,
# drain, trace streaming), the fleet membership layer, and the
# process-spawning acceptance pair — batch vs serial byte-identity
# under a mid-batch worker kill, and the local-mode SIGTERM drain —
# all under the race detector.
serve-smoke:
	$(GO) test -race -count=1 ./internal/serve/
	$(GO) test -race -count=1 -run 'TestFleet|TestRepeated' ./internal/wire/
	$(GO) test -race -count=1 -run 'TestServe' -timeout 10m ./cmd/banger/

# Churn soak: 25 seeded rounds of fleet churn under the race detector —
# each round joins a worker mid-run, drains another, SIGKILL-crashes a
# processor, and asserts outputs stay byte-identical to the undisturbed
# run. CHURN_ROUNDS/CHURN_SEED tune it (CI smoke runs 5 rounds).
churn:
	CHURN_ROUNDS=25 $(GO) test -race -run 'TestChurnSoak' -count=1 -v ./internal/wire/

# Multi-session soak: 25 seeded rounds, each submitting several
# concurrent fleet runs to the same multiplexing worker daemons while a
# worker is SIGKILL-style killed mid-round and a replacement rejoins —
# all under the race detector, every run's outputs checked against its
# solo baseline. MULTISOAK_ROUNDS/MULTISOAK_SEED tune it (CI smoke
# runs fewer rounds; a failure names the round's seed for replay).
multisoak:
	MULTISOAK_ROUNDS=25 $(GO) test -race -run 'TestMultiSoak' -count=1 -v -timeout 20m ./internal/wire/

# Chaos soak: the seeded fault-injection suite 50 times under the race
# detector — crashes, drops, duplicates, delays and corruptions against
# the recovering runtime.
chaos:
	$(GO) test -race -count=50 -run 'Fault|Crash|Random|Watchdog|Stall|Duplicate' ./internal/exec/

# Differential conformance sweep: 25 deterministic seeds, each run
# through the analytic simulator, the virtual-time runner, and both
# distributed backends (in-process and TCP), cross-checking outputs,
# traces, makespans, causality and message conservation. Every 5th
# seed additionally runs the multi-run concurrency scenario: 2-3 cases
# multiplexed on one shared fleet, each checked byte-identical to its
# solo baseline. Failures are minimized and written as repro dirs
# under conform-out/
# (replay with: go run ./cmd/banger conform -repro conform-out/seed-N).
conform: build
	$(GO) run ./cmd/banger conform -seeds 25 -jobs 4 -multi 5 -out conform-out

# Short native-fuzzing pass over the decoder/parser targets and the
# conformance harness: seconds, not minutes — catches regressions on
# the pinned corpus plus a little fresh exploration.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzReadFrame -fuzztime 5s ./internal/wire/
	$(GO) test -run '^$$' -fuzz FuzzDecodeMsg -fuzztime 5s ./internal/wire/
	$(GO) test -run '^$$' -fuzz FuzzParseFaults -fuzztime 5s ./internal/exec/
	$(GO) test -run '^$$' -fuzz FuzzConform -fuzztime 20s ./internal/conform/
