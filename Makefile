GO ?= go

.PHONY: build test vet race verify bench bench-smoke bench-dist chaos conform fuzz-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The runner is the only genuinely concurrent subsystem (one goroutine
# per processor, plus the schedule index and routing tables shared
# read-only); run it under the race detector. The recovery planner is
# exercised concurrently by the runner's crash handling, so its tests
# join the race pass, as do the wire transport (coordinator, worker
# daemons, reconnect relay) and the multi-process CLI integration tests.
race:
	$(GO) test -race ./internal/exec/...
	$(GO) test -race ./internal/sched/ -run Recover
	$(GO) test -race ./internal/wire/
	$(GO) test -race ./internal/conform/
	$(GO) test -race ./cmd/banger/

# Tier-1 verification: what every PR must keep green.
verify: build vet test race bench-smoke

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# One-iteration pass over the scheduler scaling benchmarks plus the
# single-process/distributed runner pair: catches crashes or
# pathological slowdowns in the hot paths without the cost of a
# statistically meaningful benchmark run.
bench-smoke:
	$(GO) test -run=NONE -bench=SchedulerScaling -benchtime=1x .
	$(GO) test -run=NONE -bench='RunnerWall|RunnerTCP' -benchtime=1x -benchmem .

# The committed distributed-runtime baselines (BENCH_PR6.json) were
# measured with this: the wall-clock runner against the TCP mesh and
# relay planes on loopback, 15 iterations, medians of 3 runs.
bench-dist:
	$(GO) test -run=NONE -bench='RunnerVirtual|RunnerWall|RunnerTCP' -benchtime=15x -benchmem -count=3 .

# Chaos soak: the seeded fault-injection suite 50 times under the race
# detector — crashes, drops, duplicates, delays and corruptions against
# the recovering runtime.
chaos:
	$(GO) test -race -count=50 -run 'Fault|Crash|Random|Watchdog|Stall|Duplicate' ./internal/exec/

# Differential conformance sweep: 25 deterministic seeds, each run
# through the analytic simulator, the virtual-time runner, and both
# distributed backends (in-process and TCP), cross-checking outputs,
# traces, makespans, causality and message conservation. Failures are
# minimized and written as repro dirs under conform-out/
# (replay with: go run ./cmd/banger conform -repro conform-out/seed-N).
conform: build
	$(GO) run ./cmd/banger conform -seeds 25 -jobs 4 -out conform-out

# Short native-fuzzing pass over the decoder/parser targets and the
# conformance harness: seconds, not minutes — catches regressions on
# the pinned corpus plus a little fresh exploration.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzReadFrame -fuzztime 5s ./internal/wire/
	$(GO) test -run '^$$' -fuzz FuzzDecodeMsg -fuzztime 5s ./internal/wire/
	$(GO) test -run '^$$' -fuzz FuzzParseFaults -fuzztime 5s ./internal/exec/
	$(GO) test -run '^$$' -fuzz FuzzConform -fuzztime 20s ./internal/conform/
