package banger_test

// The benchmark harness: one benchmark per artefact of the paper's
// evaluation (Figures 1-4) plus the ablation experiments A-D described
// in DESIGN.md. `go run ./cmd/experiments` prints the figures
// themselves; these benchmarks measure the machinery that regenerates
// them.

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/gantt"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/pits"
	"repro/internal/project"
	"repro/internal/sched"
	"repro/internal/wire"
)

func mustLU(b *testing.B) *core.Environment {
	b.Helper()
	env, err := core.OpenBuiltin("lu3x3")
	if err != nil {
		b.Fatal(err)
	}
	return env
}

func hypercubeMachine(b *testing.B, dim int) *machine.Machine {
	b.Helper()
	topo, err := machine.Hypercube(dim)
	if err != nil {
		b.Fatal(err)
	}
	m, err := machine.New(topo.Name, topo, machine.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkFig1_BuildFlattenLU measures constructing and flattening
// the paper's Figure 1 design (two-level hierarchical LU graph).
func BenchmarkFig1_BuildFlattenLU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, err := project.LU3x3()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.Design.Flatten(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2_Topologies measures building each supported topology
// family (Figure 2) including its all-pairs routing tables.
func BenchmarkFig2_Topologies(b *testing.B) {
	build := map[string]func() (*machine.Topology, error){
		"hypercube": func() (*machine.Topology, error) { return machine.Hypercube(6) },
		"mesh":      func() (*machine.Topology, error) { return machine.Mesh(8, 8) },
		"tree":      func() (*machine.Topology, error) { return machine.Tree(2, 6) },
		"star":      func() (*machine.Topology, error) { return machine.Star(64) },
		"full":      func() (*machine.Topology, error) { return machine.Full(64) },
	}
	for name, mk := range build {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				topo, err := mk()
				if err != nil {
					b.Fatal(err)
				}
				_ = topo.Diameter() // forces BFS routing tables
			}
		})
	}
}

// BenchmarkFig3_ScheduleHypercube measures MH mapping the LU design
// onto the machines of Figure 3: hypercubes of 2, 4 and 8 processors.
func BenchmarkFig3_ScheduleHypercube(b *testing.B) {
	env := mustLU(b)
	for _, dim := range []int{1, 2, 3} {
		m := hypercubeMachine(b, dim)
		b.Run(m.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := (sched.MH{}).Schedule(env.Flat.Graph, m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig3_SpeedupPrediction measures producing the full speedup
// chart (schedule on 1, 2, 4, 8 PEs).
func BenchmarkFig3_SpeedupPrediction(b *testing.B) {
	env := mustLU(b)
	for i := 0; i < b.N; i++ {
		if _, err := env.SpeedupCurve("mh", []int{0, 1, 2, 3}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4_NewtonSqrtTask measures the calculator's instant
// feedback: trial-running the Figure 4 SquareRoot routine.
func BenchmarkFig4_NewtonSqrtTask(b *testing.B) {
	p, err := project.NewtonSqrt()
	if err != nil {
		b.Fatal(err)
	}
	src := p.Design.Node("sqrt").Routine
	inputs := pits.Env{"a": pits.Num(2)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pits.TrialRun(src, inputs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtA_SchedulerComparison measures every heuristic on a
// 64-task random layered graph over an 8-PE hypercube — the ablation
// behind experiment A.
func BenchmarkExtA_SchedulerComparison(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	g, err := graph.LayeredRandom(rng, graph.LayeredConfig{
		Layers: 8, Width: 8, MinWork: 10, MaxWork: 100, MinWords: 1, MaxWords: 40, Density: 0.3,
	})
	if err != nil {
		b.Fatal(err)
	}
	m := hypercubeMachine(b, 3)
	for _, s := range sched.All() {
		b.Run(s.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.Schedule(g, m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExtC_RealRun measures the goroutine runner executing the
// scheduled LU program end to end (experiment C's measured side).
func BenchmarkExtC_RealRun(b *testing.B) {
	env := mustLU(b)
	sc, err := env.Schedule("etf")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Run(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtC_Simulate measures the discrete-event simulator on the
// same schedule (experiment C's predicted side).
func BenchmarkExtC_Simulate(b *testing.B) {
	env := mustLU(b)
	sc, err := env.Schedule("etf")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.Simulate(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtD_Codegen measures generating the standalone Go program
// for the scheduled LU design (experiment D).
func BenchmarkExtD_Codegen(b *testing.B) {
	env := mustLU(b)
	sc, err := env.Schedule("etf")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codegen.Generate(sc, env.Flat, env.Project.Inputs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPITSInterp measures raw interpreter throughput on a tight
// arithmetic loop (the substrate of every trial run).
func BenchmarkPITSInterp(b *testing.B) {
	prog := pits.MustParse(`s = 0
for i = 1 to 1000 do
  s = s + sqrt(i) * 2 - i / 3
end`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := pits.NewInterp()
		if err := in.Run(prog, pits.Env{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRehearse measures a full sequential rehearsal of the LU
// design (trial run of an entire program).
func BenchmarkRehearse(b *testing.B) {
	env := mustLU(b)
	for i := 0; i < b.N; i++ {
		if _, err := env.Rehearse(); err != nil {
			b.Fatal(err)
		}
	}
}

// scalingGraphs memoizes scalingGraph results: generating the ~100k
// task graph takes most of a minute, and several benchmarks share the
// same sizes. Benchmarks run sequentially, so no lock.
var scalingGraphs = map[[2]int]*graph.Graph{}

// scalingGraph builds (once) the deterministic random layered DAG used
// by the scaling benchmarks: layers*width tasks at density 0.3.
func scalingGraph(b *testing.B, layers, width int) *graph.Graph {
	b.Helper()
	if g, ok := scalingGraphs[[2]int{layers, width}]; ok {
		return g
	}
	rng := rand.New(rand.NewSource(7))
	g, err := graph.LayeredRandom(rng, graph.LayeredConfig{
		Layers: layers, Width: width,
		MinWork: 10, MaxWork: 100, MinWords: 1, MaxWords: 40, Density: 0.3,
	})
	if err != nil {
		b.Fatal(err)
	}
	scalingGraphs[[2]int{layers, width}] = g
	return g
}

// scalingSizes covers interactive sizes (16..256 tasks) plus the large
// generated graphs (~500/2000/8000 tasks) where asymptotic behaviour
// dominates.
var scalingSizes = []struct{ layers, width int }{
	{4, 4}, {8, 8}, {16, 16}, {25, 20}, {50, 40}, {100, 80},
}

// scalingSizesBig extends the sweep to ~32k and ~100k tasks for the
// O(ready×PEs)-per-step schedulers. Skipped under -short (bench-smoke):
// generating and scheduling these graphs takes minutes, not seconds.
var scalingSizesBig = []struct{ layers, width int }{
	{200, 160}, {350, 290},
}

// BenchmarkSchedulerScaling measures the greedy schedulers on growing
// random graphs, checking each heuristic stays usable at interactive
// sizes. Allocation counts are reported because the arena-backed
// scheduler core's main promise is doing this work without per-
// evaluation garbage. Each sub-benchmark schedules once before the
// timer starts, so the one-time compile of the graph view (cached
// across runs) and the arena warm-up are not in the measured op —
// the op is the steady-state schedule/inspect/tweak latency.
// Baseline: BENCH_PR7.json (BENCH_PR2.json measured the pre-arena core).
func BenchmarkSchedulerScaling(b *testing.B) {
	schedulers := []sched.Scheduler{
		sched.MH{}, sched.ETF{}, sched.HLFET{}, sched.DSH{}, sched.ISH{}, sched.BSP{},
	}
	// The quadratic-and-worse schedulers stop at ~8k tasks; the
	// near-linear ones continue into the 32k/100k range.
	bigOK := map[string]bool{"etf": true, "hlfet": true, "bsp": true}
	// One machine for the whole sweep: the compiled graph view is
	// cached per (graph, machine) identity, so sharing the machine lets
	// every sub-benchmark reuse its graph's compiled view.
	m := hypercubeMachine(b, 3)
	for _, s := range schedulers {
		b.Run(s.Name(), func(b *testing.B) {
			sizes := scalingSizes
			if bigOK[s.Name()] && !testing.Short() {
				sizes = append(append([]struct{ layers, width int }{}, sizes...), scalingSizesBig...)
			}
			for _, size := range sizes {
				g := scalingGraph(b, size.layers, size.width)
				b.Run(g.Name, func(b *testing.B) {
					b.ReportAllocs()
					if _, err := s.Schedule(g, m); err != nil { // warm compile cache + arenas
						b.Fatal(err)
					}
					// Return the warm-up schedule's spans (at 100k tasks the
					// Slots/Msgs product is most of a gigabyte) to the heap
					// free lists so the timed iterations reuse already-
					// faulted pages instead of growing the heap — first
					// touch of fresh pages is the dominant cost of a large
					// schedule on fault-slow hosts, and it is a one-time
					// cost, not part of steady-state latency.
					runtime.GC()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, err := s.Schedule(g, m); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		})
	}
}

// BenchmarkValidate measures re-checking an ETF schedule of a large
// random graph against the graph and machine model — the hot path of
// every load-from-JSON and every property test.
func BenchmarkValidate(b *testing.B) {
	for _, size := range scalingSizes[3:] { // 500/2000/8000 tasks
		g := scalingGraph(b, size.layers, size.width)
		m := hypercubeMachine(b, 3)
		sc, err := (sched.ETF{}).Schedule(g, m)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(g.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := sc.Validate(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGanttRender measures rendering the ASCII Gantt chart plus
// the utilisation report for an ETF schedule of a large random graph —
// the display loop of the paper's schedule/inspect/tweak cycle.
func BenchmarkGanttRender(b *testing.B) {
	for _, size := range scalingSizes[3:] { // 500/2000/8000 tasks
		g := scalingGraph(b, size.layers, size.width)
		m := hypercubeMachine(b, 3)
		sc, err := (sched.ETF{}).Schedule(g, m)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(g.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = gantt.Chart(sc, 100)
				_ = gantt.Report(sc)
			}
		})
	}
}

// runnerDesign builds a layered calculator design of layers*width+1
// real PITS tasks: every layer-l task combines two layer-(l-1) results,
// layer 0 reads the external input, and a final sink folds the last
// layer into one external output. Unlike the scheduler-scaling random
// graphs, every task carries an executable routine, so the parallel
// runner can actually interpret it.
func runnerDesign(b *testing.B, layers, width int) (*graph.Flat, pits.Env) {
	b.Helper()
	flat, err := layeredCalcGraph(layers, width).Flatten()
	if err != nil {
		b.Fatal(err)
	}
	return flat, pits.Env{"x": pits.Num(3)}
}

// layeredCalcGraph is the design behind runnerDesign, unflattened —
// the serve benchmarks post it whole as a project submission.
func layeredCalcGraph(layers, width int) *graph.Graph {
	g := graph.New("layered-calc")
	g.MustAddStorage("IN", "x")
	for l := 0; l < layers; l++ {
		for i := 0; i < width; i++ {
			id := graph.NodeID(fmt.Sprintf("t%d_%d", l, i))
			n := g.MustAddTask(id, string(id), int64(10+(l*7+i*3)%20))
			v := fmt.Sprintf("v%d_%d", l, i)
			if l == 0 {
				n.Routine = fmt.Sprintf("%s = x + %d", v, i)
				g.MustConnect("IN", id, "x", 1)
				continue
			}
			left := fmt.Sprintf("v%d_%d", l-1, i)
			right := fmt.Sprintf("v%d_%d", l-1, (i+1)%width)
			n.Routine = fmt.Sprintf("%s = %s + %s * 2", v, left, right)
			g.MustConnect(graph.NodeID(fmt.Sprintf("t%d_%d", l-1, i)), id, left, 1)
			g.MustConnect(graph.NodeID(fmt.Sprintf("t%d_%d", l-1, (i+1)%width)), id, right, 1)
		}
	}
	snk := g.MustAddTask("snk", "sink", 20)
	terms := make([]string, width)
	for i := 0; i < width; i++ {
		v := fmt.Sprintf("v%d_%d", layers-1, i)
		terms[i] = v
		g.MustConnect(graph.NodeID(fmt.Sprintf("t%d_%d", layers-1, i)), "snk", v, 1)
	}
	snk.Routine = "out = " + strings.Join(terms, " + ")
	g.MustAddStorage("OUT", "out")
	g.MustConnect("snk", "OUT", "out", 1)
	return g
}

// BenchmarkRunnerVirtual measures the goroutine runner in deterministic
// virtual time on a ~500-task layered calculator design scheduled by
// ETF onto an 8-processor hypercube — the fault-tolerant runtime's
// fault-free fast path (watchdogs armed, no retries, no checksums).
// Baseline: BENCH_PR3.json.
func BenchmarkRunnerVirtual(b *testing.B) {
	flat, inputs := runnerDesign(b, 20, 25) // 501 tasks
	m := hypercubeMachine(b, 3)
	sc, err := (sched.ETF{}).Schedule(flat.Graph, m)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := &exec.Runner{Inputs: inputs, VirtualTime: true}
		if _, err := r.Run(sc, flat); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDistTCP distributes the 501-task design over two worker daemons
// on loopback TCP (connection handshakes included — each iteration is
// a full run), with the data plane selected by mesh.
func benchDistTCP(b *testing.B, mesh bool) {
	flat, inputs := runnerDesign(b, 20, 25) // 501 tasks
	m := hypercubeMachine(b, 3)
	sc, err := (sched.ETF{}).Schedule(flat.Graph, m)
	if err != nil {
		b.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var addrs []string
	for i := 0; i < 2; i++ {
		ready := make(chan string, 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			wire.ServeWorker(ctx, wire.TCP(), "127.0.0.1:0", wire.WorkerOptions{},
				func(bound string) { ready <- bound })
		}()
		addrs = append(addrs, <-ready)
	}
	b.Cleanup(func() {
		cancel()
		wg.Wait()
	})

	co := &wire.Coordinator{
		Transport: wire.TCP(), Addrs: addrs,
		Runner: &exec.Runner{Inputs: inputs},
		Mesh:   mesh,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := co.Run(ctx, sc, flat); err != nil {
			b.Fatal(err)
		}
	}
}

// elasticReplanBench measures the latency of the fleet-change barrier's
// replan — what every worker waits out, paused, when the fleet grows or
// shrinks mid-run. The era's first third counts as done; surviving
// results parked on departing processors are re-homed round-robin onto
// the live set, the way the coordinator re-homes a drained worker's
// checkpoint. homes restricts where done tasks may sit (the pre-join
// fleet for the expand direction, the survivors for drain).
func elasticReplanBench(b *testing.B, layers, width int, live, homes []bool) {
	flat, _ := runnerDesign(b, layers, width)
	m := hypercubeMachine(b, 3)
	sc, err := (sched.ETF{}).Schedule(flat.Graph, m)
	if err != nil {
		b.Fatal(err)
	}
	var homeList []int
	for pe, h := range homes {
		if h {
			homeList = append(homeList, pe)
		}
	}
	cut := sc.Makespan() / 3
	done := map[graph.NodeID]int{}
	rehomed := 0
	for _, sl := range sc.Slots {
		if sl.Dup || sl.Finish > cut {
			continue
		}
		pe := sl.PE
		if !homes[pe] {
			pe = homeList[rehomed%len(homeList)]
			rehomed++
		}
		done[sl.Task] = pe
	}
	st := sched.ReplanState{Live: live, Done: done}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.Replan(sc, st); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkElasticReplan pins the barrier replan latency in both fleet
// directions on the 501-task and ~8k-task layered designs (hypercube-8,
// ETF). expand: two processors revive after a join, queued work
// migrates onto them. drain: two processors depart gracefully, their
// queued work and re-homed results fold onto the survivors. Baseline:
// BENCH_PR8.json.
func BenchmarkElasticReplan(b *testing.B) {
	mask := func(dead ...int) []bool {
		m := []bool{true, true, true, true, true, true, true, true}
		for _, pe := range dead {
			m[pe] = false
		}
		return m
	}
	all := mask()
	for _, sz := range []struct {
		name          string
		layers, width int
	}{
		{"501", 20, 25},
		{"8001", 80, 100},
	} {
		b.Run("expand/"+sz.name, func(b *testing.B) {
			// Pre-join era ran on six processors; 6 and 7 revive.
			elasticReplanBench(b, sz.layers, sz.width, all, mask(6, 7))
		})
		b.Run("drain/"+sz.name, func(b *testing.B) {
			survivors := mask(0, 1)
			elasticReplanBench(b, sz.layers, sz.width, survivors, survivors)
		})
	}
}

// BenchmarkRunnerTCP measures the same 501-task design distributed
// over two worker daemons on loopback TCP with the peer-to-peer mesh
// data plane (the CLI default): workers dial each other, data frames
// coalesce per peer, and acks batch into the flushes. The delta
// against BenchmarkRunnerWall is the wire transport's overhead.
// Baseline: BENCH_PR6.json (PR4 measured the relay plane here).
func BenchmarkRunnerTCP(b *testing.B) { benchDistTCP(b, true) }

// BenchmarkRunnerTCPRelay is the same distributed run with the mesh
// off: every cross-worker message relays through the coordinator, one
// frame per message. The TCP/TCPRelay ratio is what batching and
// peer-to-peer routing buy.
func BenchmarkRunnerTCPRelay(b *testing.B) { benchDistTCP(b, false) }

// BenchmarkRunnerWall is the single-process wall-clock twin of
// BenchmarkRunnerTCP: identical design, schedule and machine, all
// processors on in-process channels. The TCP/Wall ratio isolates what
// the distributed message plane costs.
func BenchmarkRunnerWall(b *testing.B) {
	flat, inputs := runnerDesign(b, 20, 25) // 501 tasks
	m := hypercubeMachine(b, 3)
	sc, err := (sched.ETF{}).Schedule(flat.Graph, m)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := &exec.Runner{Inputs: inputs}
		if _, err := r.Run(sc, flat); err != nil {
			b.Fatal(err)
		}
	}
}
