package banger_test

import (
	"math"
	"strings"
	"testing"

	banger "repro"
)

// TestQuickstartFlow exercises the README's quick-start path through
// the public facade only.
func TestQuickstartFlow(t *testing.T) {
	env, err := banger.OpenBuiltin("lu3x3")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := env.Schedule("mh")
	if err != nil {
		t.Fatal(err)
	}
	chart := banger.GanttChart(sc, 72)
	if !strings.Contains(chart, "PE0") {
		t.Errorf("chart:\n%s", chart)
	}
	res, err := env.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	x := res.Outputs["x"].(banger.Vec)
	for i, want := range []float64{1, 2, 3} {
		if math.Abs(x[i]-want) > 1e-9 {
			t.Errorf("x[%d] = %v", i+1, x[i])
		}
	}
}

func TestBuildDesignThroughFacade(t *testing.T) {
	g := banger.NewGraph("two-step")
	n1 := g.MustAddTask("gen", "generate", 10)
	n1.Routine = "v = [1, 2, 3, 4]"
	n2 := g.MustAddTask("agg", "aggregate", 10)
	n2.Routine = "total = sum(v)"
	g.MustConnect("gen", "agg", "v", 4)
	g.MustAddStorage("OUT", "total")
	g.MustConnect("agg", "OUT", "total", 1)

	m, err := banger.NewMachine("pair", "full:2", banger.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	p := &banger.Project{Name: "two-step", Design: g, Machine: m}
	env, err := banger.Open(p)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := env.Schedule("etf")
	if err != nil {
		t.Fatal(err)
	}
	res, err := env.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs["total"] != banger.Num(10) {
		t.Errorf("total = %v", res.Outputs["total"])
	}
}

func TestFacadeHelpers(t *testing.T) {
	if len(banger.Schedulers()) != 8 {
		t.Errorf("schedulers = %d", len(banger.Schedulers()))
	}
	if _, err := banger.SchedulerByName("mh"); err != nil {
		t.Error(err)
	}
	names := banger.Builtins()
	if len(names) != 4 {
		t.Errorf("builtins = %v", names)
	}
	if _, err := banger.NewMachine("x", "bogus", banger.DefaultParams()); err == nil {
		t.Error("bad topo spec accepted")
	}
	rep, err := banger.TrialRun("y = sqrt(a)", banger.Env{"a": banger.Num(9)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outputs["y"] != banger.Num(3) {
		t.Errorf("y = %v", rep.Outputs["y"])
	}
}

func TestFacadeChartsAndCode(t *testing.T) {
	env, err := banger.OpenBuiltin("stats")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := env.Schedule("etf")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := banger.Simulate(sc)
	if err != nil {
		t.Fatal(err)
	}
	chart, err := banger.TraceChart(tr, sc.Machine.NumPE(), 60)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chart, "simulated:etf") {
		t.Errorf("chart:\n%s", chart)
	}
	svg := banger.GanttSVG(sc)
	if !strings.HasPrefix(svg, "<svg") {
		t.Error("svg shape")
	}
	pts, err := env.SpeedupCurve("etf", []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if s := banger.SpeedupChart(pts, 8); !strings.Contains(s, "speedup vs processors") {
		t.Errorf("speedup chart:\n%s", s)
	}
	src, err := banger.GenerateCode(sc, env.Flat, env.Project.Inputs)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "package main") {
		t.Error("generated source shape")
	}
}

func TestFacadePanel(t *testing.T) {
	p := banger.NewPanel("demo")
	p.DeclareInput("a", banger.Num(4))
	p.DeclareOutput("b")
	p.LoadProgram("b = a * a")
	if err := p.Press("RUN"); err != nil {
		t.Fatal(err)
	}
	out := banger.RenderPanel(p)
	if !strings.Contains(out, "demo") || !strings.Contains(out, "b = 16") {
		t.Errorf("panel:\n%s", out)
	}
}
