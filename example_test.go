package banger_test

import (
	"fmt"
	"log"

	banger "repro"
)

// Example reproduces the paper's headline flow: open the Figure 1 LU
// design, schedule it with the mapping heuristic, and run it.
func Example() {
	env, err := banger.OpenBuiltin("lu3x3")
	if err != nil {
		log.Fatal(err)
	}
	sc, err := env.Schedule("mh")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("makespan %v on %d PEs, speedup %.2f\n",
		sc.Makespan(), sc.Machine.NumPE(), sc.Speedup())
	res, err := env.Run(sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("x =", res.Outputs["x"])
	// Output:
	// makespan 211us on 8 PEs, speedup 1.69
	// x = [1, 2, 3]
}

// ExampleTrialRun shows the calculator's instant feedback on the
// Figure 4 Newton–Raphson routine.
func ExampleTrialRun() {
	rep, err := banger.TrialRun(`x = a
eps = 1e-12
err = 1
while err > eps do
  xold = x
  x = 0.5 * (xold + a / xold)
  err = abs(x - xold)
end`, banger.Env{"a": banger.Num(144)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("x =", rep.Outputs["x"])
	// Output:
	// x = 12
}

// ExampleEnvironment_SpeedupCurve predicts speedup on hypercubes of
// 1, 2, 4 and 8 processors (the paper's Figure 3, right).
func ExampleEnvironment_SpeedupCurve() {
	env, err := banger.OpenBuiltin("lu3x3")
	if err != nil {
		log.Fatal(err)
	}
	pts, err := env.SpeedupCurve("mh", []int{0, 1, 2, 3})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pts {
		fmt.Printf("%d PEs: %.2f\n", p.PEs, p.Speedup)
	}
	// Output:
	// 1 PEs: 1.00
	// 2 PEs: 1.56
	// 4 PEs: 1.69
	// 8 PEs: 1.69
}

// ExampleShardTask turns one heavy reduction into four data-parallel
// shards plus a gather — the paper's fine-grained extension.
func ExampleShardTask() {
	g := banger.NewGraph("reduce")
	g.MustAddStorage("N", "n")
	w := g.MustAddTask("work", "sum 1..n", 1000)
	w.Routine = `total = 0
lo = floor((shard - 1) * n / nshards) + 1
hi = floor(shard * n / nshards)
for i = lo to hi do
  total = total + i
end`
	g.MustAddStorage("OUT", "total")
	g.MustConnect("N", "work", "n", 1)
	g.MustConnect("work", "OUT", "total", 1)
	if err := banger.ShardTask(g, "work", 4, 10, banger.GatherSum(4, "total")); err != nil {
		log.Fatal(err)
	}
	m, err := banger.NewMachine("quad", "full:4", banger.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	env, err := banger.Open(&banger.Project{
		Name: "reduce", Design: g, Machine: m,
		Inputs: banger.Env{"n": banger.Num(1000)},
	})
	if err != nil {
		log.Fatal(err)
	}
	sc, err := env.Schedule("etf")
	if err != nil {
		log.Fatal(err)
	}
	res, err := env.Run(sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("total = %s on %d PEs\n", res.Outputs["total"], sc.UsedPEs())
	// Output:
	// total = 500500 on 4 PEs
}
