// Quickstart: build a four-task design from scratch, schedule it on a
// two-processor machine, draw the Gantt chart, and run it for real.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	banger "repro"
)

func main() {
	// Step 1 — programming-in-the-large: a diamond dataflow graph.
	//
	//	[x0] -> (double) -> (inc), (tens) -> (combine) -> [y]
	g := banger.NewGraph("quickstart")
	g.MustAddStorage("X0", "x0") // external input cell
	double := g.MustAddTask("double", "u = 2*x0", 10)
	inc := g.MustAddTask("inc", "v = u+1", 10)
	tens := g.MustAddTask("tens", "w = u*10", 10)
	combine := g.MustAddTask("combine", "y = v+w", 10)
	g.MustAddStorage("Y", "y") // external output cell

	g.MustConnect("X0", "double", "x0", 1)
	g.MustConnect("double", "inc", "u", 1)
	g.MustConnect("double", "tens", "u", 1)
	g.MustConnect("inc", "combine", "v", 1)
	g.MustConnect("tens", "combine", "w", 1)
	g.MustConnect("combine", "Y", "y", 1)

	// Step 2 — programming-in-the-small: one calculator routine per task.
	double.Routine = "u = 2 * x0"
	inc.Routine = "v = u + 1"
	tens.Routine = "w = u * 10"
	combine.Routine = "y = v + w"

	// Step 3 — a target machine: two fully connected processors.
	m, err := banger.NewMachine("pair", "full:2", banger.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}

	// Step 4 — open the project, schedule, inspect, run.
	env, err := banger.Open(&banger.Project{
		Name: "quickstart", Design: g, Machine: m,
		Inputs: banger.Env{"x0": banger.Num(3)},
	})
	if err != nil {
		log.Fatal(err)
	}
	sc, err := env.Schedule("etf")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(banger.GanttChart(sc, 64))

	res, err := env.Run(sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ny = %s  (2*3+1 + 2*3*10 = 67)\n", res.Outputs["y"])
	fmt.Printf("ran in %v across %d goroutine processors\n", res.Elapsed, sc.Machine.NumPE())
}
