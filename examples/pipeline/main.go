// Pipeline runs the built-in "stats" project — eight sensor channels
// reduced in parallel on a 2x4 mesh — three ways: predicted by the
// discrete-event simulator, executed on goroutines, and compiled to a
// standalone Go program. It shows how the same design moves between
// machines without change (the paper's machine-independence principle).
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	banger "repro"
	"repro/internal/machine"
)

func main() {
	env, err := banger.OpenBuiltin("stats")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Design:", env.Flat.Graph.Summary())
	fmt.Println("Machine:", env.Project.Machine)

	// Predicted behaviour on the project's mesh.
	sc, err := env.Schedule("mh")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nPredicted schedule (MH, contention-aware):")
	fmt.Print(banger.GanttChart(sc, 72))

	tr, err := banger.Simulate(sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated makespan (contention-free model): %v\n", tr.Makespan())

	// Same design, different machines — nothing in the design changes.
	fmt.Println("\nThe same design on other topologies (MH):")
	for _, spec := range []string{"full:8", "hypercube:3", "star:8", "ring:8"} {
		topo, err := machine.ParseTopology(spec)
		if err != nil {
			log.Fatal(err)
		}
		m, err := env.Project.Machine.Scale(topo)
		if err != nil {
			log.Fatal(err)
		}
		s2, err := env.ScheduleOn("mh", m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s makespan %-8v speedup %.2f\n", spec, s2.Makespan(), s2.Speedup())
	}

	// Real run.
	res, err := env.Run(sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nReal run: best channel mean = %s, spread = %s (wall %v)\n",
		res.Outputs["best"], res.Outputs["spread"], res.Elapsed)

	// Code generation: the paper's "final step".
	src, err := env.GenerateCode(sc)
	if err != nil {
		log.Fatal(err)
	}
	out := filepath.Join(os.TempDir(), "banger_stats_generated.go")
	if err := os.WriteFile(out, []byte(src), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGenerated standalone program: %s (%d bytes)\n", out, len(src))
	fmt.Println("Build it with:  cd $(mktemp -d) && cp", out, "main.go && go mod init x && go build")
}
