// Editdistance computes the Levenshtein distance between two strings
// with a wavefront of dataflow tasks: cell (i,j) of the dynamic-
// programming table depends on its north, west and diagonal
// neighbours, so anti-diagonals execute in parallel. The design runs
// on a mesh machine and the result is verified against a sequential
// reference.
//
//	go run ./examples/editdistance
package main

import (
	"fmt"
	"log"

	banger "repro"
)

// The two sequences, encoded as small integer vectors (a=1, b=2, ...).
var (
	seqA = []float64{3, 1, 20, 19}    // "cats"
	seqB = []float64{3, 18, 1, 20, 5} // "crate"
)

func cellID(i, j int) banger.NodeID {
	return banger.NodeID(fmt.Sprintf("c%d.%d", i, j))
}

func cellVar(i, j int) string { return fmt.Sprintf("d%d_%d", i, j) }

// buildDesign constructs the DP wavefront. Cell (i,j) for 1<=i<=lenA,
// 1<=j<=lenB computes d[i][j]; boundary values are literals inside the
// routines (d[i][0] = i, d[0][j] = j).
func buildDesign() *banger.Graph {
	n, m := len(seqA), len(seqB)
	g := banger.NewGraph("editdistance")
	g.MustAddStorage("SA", "seqa")
	g.MustAddStorage("SB", "seqb")
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			// Bind neighbour values: boundary cells use literals.
			north, west, diag := fmt.Sprintf("%d", j), fmt.Sprintf("%d", i), fmt.Sprintf("%d", i+j-2)
			if i > 1 {
				north = cellVar(i-1, j)
			}
			if j > 1 {
				west = cellVar(i, j-1)
			}
			if i > 1 && j > 1 {
				diag = cellVar(i-1, j-1)
			}
			if i > 1 && j == 1 {
				diag = fmt.Sprintf("%d", i-1)
			}
			if i == 1 && j > 1 {
				diag = fmt.Sprintf("%d", j-1)
			}
			task := g.MustAddTask(cellID(i, j), fmt.Sprintf("cell %d,%d", i, j), 25)
			task.Routine = fmt.Sprintf(`cost = 1
if seqa[%d] == seqb[%d] then
  cost = 0
end
%s = min(%s + 1, %s + 1, %s + cost)`, i, j, cellVar(i, j), north, west, diag)
			g.MustConnect("SA", cellID(i, j), "seqa", int64(n))
			g.MustConnect("SB", cellID(i, j), "seqb", int64(m))
			if i > 1 {
				g.MustConnect(cellID(i-1, j), cellID(i, j), cellVar(i-1, j), 1)
			}
			if j > 1 {
				g.MustConnect(cellID(i, j-1), cellID(i, j), cellVar(i, j-1), 1)
			}
			if i > 1 && j > 1 {
				g.MustConnect(cellID(i-1, j-1), cellID(i, j), cellVar(i-1, j-1), 1)
			}
		}
	}
	g.MustAddStorage("OUT", "distance")
	final := g.MustAddTask("publish", "publish result", 5)
	final.Routine = "distance = " + cellVar(n, m)
	g.MustConnect(cellID(n, m), "publish", cellVar(n, m), 1)
	g.MustConnect("publish", "OUT", "distance", 1)
	return g
}

// reference is the plain sequential Levenshtein.
func reference(a, b []float64) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

func main() {
	g := buildDesign()
	m, err := banger.NewMachine("mesh", "mesh:2x3", banger.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	env, err := banger.Open(&banger.Project{
		Name: "editdistance", Design: g, Machine: m,
		Inputs: banger.Env{"seqa": banger.Vec(seqA), "seqb": banger.Vec(seqB)},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Design:", env.Flat.Graph.Summary())

	sc, err := env.Schedule("dsh")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nWavefront schedule (DSH) on a 2x3 mesh:")
	fmt.Print(banger.GanttChart(sc, 72))

	res, err := env.Run(sc)
	if err != nil {
		log.Fatal(err)
	}
	got := int(res.Outputs["distance"].(banger.Num))
	want := reference(seqA, seqB)
	fmt.Printf("\nedit distance(cats, crate) = %d (reference %d)\n", got, want)
	if got != want {
		log.Fatal("parallel DP diverged from the sequential reference")
	}
	fmt.Println("verified: every anti-diagonal computed in parallel, same answer")
}
