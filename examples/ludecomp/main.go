// Ludecomp reproduces the paper's running example end to end: the
// Figure 1 hierarchical LU-decomposition design, scheduled onto
// hypercubes of 2, 4 and 8 processors (Figure 3's Gantt charts), the
// speedup-prediction chart, and a real parallel run whose result is
// checked against the exact solution x = (1, 2, 3).
//
//	go run ./examples/ludecomp
package main

import (
	"fmt"
	"log"
	"math"

	banger "repro"
	"repro/internal/machine"
	"repro/internal/project"
)

func main() {
	env, err := banger.OpenBuiltin("lu3x3")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Figure 1 — the two-level PITL design:")
	fmt.Print(env.Project.Design.ASCII())
	fmt.Println("\nFlattened:", env.Flat.Graph.Summary())

	fmt.Println("\nFigure 3 — schedules on growing hypercubes (MH heuristic):")
	for _, dim := range []int{1, 2, 3} {
		topo, err := machine.Hypercube(dim)
		if err != nil {
			log.Fatal(err)
		}
		m, err := env.Project.Machine.Scale(topo)
		if err != nil {
			log.Fatal(err)
		}
		sc, err := env.ScheduleOn("mh", m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		fmt.Print(banger.GanttChart(sc, 72))
	}

	pts, err := env.SpeedupCurve("mh", []int{0, 1, 2, 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(banger.SpeedupChart(pts, 10))

	fmt.Println("\nReal parallel run on the 8-PE machine:")
	sc, err := env.Schedule("mh")
	if err != nil {
		log.Fatal(err)
	}
	res, err := env.Run(sc)
	if err != nil {
		log.Fatal(err)
	}
	x := res.Outputs["x"].(banger.Vec)
	fmt.Printf("  x = %s (wall clock %v)\n", x, res.Elapsed)
	for i, want := range project.LUSolution() {
		if math.Abs(x[i]-want) > 1e-9 {
			log.Fatalf("x[%d] = %v, want %v — WRONG RESULT", i+1, x[i], want)
		}
	}
	fmt.Println("  verified: x solves Ax = b exactly")
}
