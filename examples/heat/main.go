// Heat runs the built-in 1-D heat-diffusion stencil: the rod is split
// into segments, each time step is a rank of tasks exchanging boundary
// cells with its neighbours (halo exchange as dataflow arcs), and the
// whole unrolled graph is scheduled onto a ring whose shape matches the
// communication pattern. The run is verified against a sequential
// reference and replayed as an animation.
//
//	go run ./examples/heat
package main

import (
	"fmt"
	"log"
	"math"

	banger "repro"
	"repro/internal/project"
)

func main() {
	env, err := banger.OpenBuiltin("heat")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Design:", env.Flat.Graph.Summary())
	fmt.Println("Machine:", env.Project.Machine)

	sc, err := env.Schedule("mh")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSchedule on the ring:")
	fmt.Print(banger.GanttChart(sc, 72))

	res, err := env.Run(sc)
	if err != nil {
		log.Fatal(err)
	}
	// Verify against the sequential reference.
	want := project.HeatReference(4, 3, env.Project.Inputs)
	maxErr := 0.0
	var rod []float64
	for seg := 0; seg < 4; seg++ {
		v := res.Outputs[fmt.Sprintf("seg%d_2", seg)].(banger.Vec)
		for i, x := range v {
			rod = append(rod, x)
			if d := math.Abs(x - want[seg*8+i]); d > maxErr {
				maxErr = d
			}
		}
	}
	fmt.Printf("\nFinal temperatures after 3 steps (max error vs reference: %g):\n  ", maxErr)
	for _, x := range rod {
		fmt.Printf("%5.1f", x)
	}
	fmt.Println()
	if maxErr > 1e-9 {
		log.Fatal("parallel result diverged from the sequential reference")
	}
	fmt.Println("  verified against the sequential reference")

	tr, err := banger.Simulate(sc)
	if err != nil {
		log.Fatal(err)
	}
	reel, err := banger.Animation(tr, sc.Machine.NumPE(), 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nAnimated replay of the predicted execution:")
	fmt.Print(reel)
}
