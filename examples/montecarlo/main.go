// Montecarlo estimates π with a scatter/gather Banger design: eight
// worker tasks each draw 20,000 random points in the unit square and
// count hits inside the quarter circle; a gather task combines the
// counts. The example compares how each scheduling heuristic maps the
// fan-out onto a star network, then runs the winner for real.
//
//	go run ./examples/montecarlo
package main

import (
	"fmt"
	"log"
	"strconv"

	banger "repro"
)

const (
	workers       = 8
	drawsPerTask  = 20000
	workPerWorker = 12 * drawsPerTask // ops estimate: ~12 per draw
)

func buildDesign() *banger.Graph {
	g := banger.NewGraph("montecarlo-pi")
	g.MustAddStorage("N", "n") // draws per worker, external input
	gather := g.MustAddTask("gather", "combine counts", 100)
	expr := ""
	for w := 0; w < workers; w++ {
		id := "w" + strconv.Itoa(w)
		task := g.MustAddTask(banger.NodeID(id), "sample worker "+id, workPerWorker)
		// Each worker's rand() stream is seeded from its task name, so
		// the run is reproducible and workers are independent.
		task.Routine = `hits = 0
repeat n do
  dx = rand()
  dy = rand()
  if dx * dx + dy * dy <= 1 then
    hits = hits + 1
  end
end
` + id + `_hits = hits`
		g.MustConnect("N", banger.NodeID(id), "n", 1)
		g.MustConnect(banger.NodeID(id), "gather", id+"_hits", 1)
		if w > 0 {
			expr += " + "
		}
		expr += id + "_hits"
	}
	gather.Routine = "total = " + expr + "\npi_est = 4 * total / (" +
		strconv.Itoa(workers) + " * n)"
	g.MustConnect("N", "gather", "n", 1)
	g.MustAddStorage("PI", "pi_est")
	g.MustConnect("gather", "PI", "pi_est", 1)
	return g
}

func main() {
	g := buildDesign()
	m, err := banger.NewMachine("star-9", "star:9", banger.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	env, err := banger.Open(&banger.Project{
		Name: "montecarlo", Design: g, Machine: m,
		Inputs: banger.Env{"n": banger.Num(drawsPerTask)},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("How each heuristic maps 8 samplers + gather onto a 9-PE star:")
	best, bestName := banger.Time(1<<62), ""
	for _, s := range banger.Schedulers() {
		sc, err := env.Schedule(s.Name())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-7s makespan %-10v speedup %.2f on %d PEs\n",
			s.Name(), sc.Makespan(), sc.Speedup(), sc.UsedPEs())
		if sc.Makespan() < best {
			best, bestName = sc.Makespan(), s.Name()
		}
	}

	fmt.Printf("\nRunning the %s schedule for real:\n", bestName)
	sc, err := env.Schedule(bestName)
	if err != nil {
		log.Fatal(err)
	}
	res, err := env.Run(sc)
	if err != nil {
		log.Fatal(err)
	}
	piEst := float64(res.Outputs["pi_est"].(banger.Num))
	fmt.Printf("  %d samples -> pi ~= %.4f (error %.4f), wall clock %v\n",
		workers*drawsPerTask, piEst, abs(piEst-3.14159265), res.Elapsed)
	chart, err := banger.TraceChart(res.Trace, sc.Machine.NumPE(), 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nWall-clock trace of the parallel run:")
	fmt.Print(chart)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
