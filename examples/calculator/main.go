// Calculator replays the paper's Figure 4 as a scripted session: the
// SquareRoot task is assembled key by key on the programmable pocket
// calculator, statically checked, and trial-run with instant feedback.
//
//	go run ./examples/calculator
package main

import (
	"fmt"
	"log"

	banger "repro"
)

// press pushes a panel key and shows what the display answers.
func press(p *banger.Panel, keys ...string) {
	for _, k := range keys {
		if err := p.Press(k); err != nil {
			fmt.Printf("  [%s] -> %s\n", k, p.Display())
			continue
		}
		fmt.Printf("  [%s]\n", k)
	}
}

func main() {
	fmt.Println("Defining the SquareRoot task (Figure 4): x = sqrt(a) by Newton-Raphson")
	p := banger.NewPanel("SquareRoot")
	p.DeclareInput("a", banger.Num(2))
	p.DeclareOutput("x")
	p.DeclareLocal("xold")
	p.DeclareLocal("err")

	fmt.Println("\nAssembling the routine from key presses:")
	// x = a
	p.Type("x")
	press(p, "=")
	p.Type("a")
	press(p, "ENTER")
	// eps = 1e-12
	p.Type("eps")
	press(p, "=")
	p.Type("1e-12")
	press(p, "ENTER")
	// err = 1
	p.Type("err")
	press(p, "=", "1", "ENTER")
	// while err > eps do
	press(p, "while")
	p.Type("err")
	press(p, ">")
	p.Type("eps")
	press(p, "do", "ENTER")
	//   xold = x
	p.Type("xold")
	press(p, "=")
	p.Type("x")
	press(p, "ENTER")
	//   x = 0.5 * (xold + a / xold)
	p.Type("x")
	press(p, "=")
	p.Type("0.5")
	press(p, "*", "(")
	p.Type("xold")
	press(p, "+")
	p.Type("a")
	press(p, "/")
	p.Type("xold")
	press(p, ")", "ENTER")
	//   err = abs(x - xold)
	p.Type("err")
	press(p, "=", "abs")
	p.Type("x")
	press(p, "-")
	p.Type("xold")
	press(p, ")", "ENTER")
	// end
	press(p, "end")

	fmt.Println("\nCHECK (static analysis):")
	if err := p.Press("CHECK"); err != nil {
		log.Fatalf("check failed: %v", err)
	}
	fmt.Println("  display:", p.Display())

	fmt.Println("\nRUN (instant feedback):")
	if err := p.Press("RUN"); err != nil {
		log.Fatalf("run failed: %v", err)
	}
	fmt.Println("  display:", p.Display())

	fmt.Println("\nThe panel (ASCII rendering of Figure 4):")
	fmt.Print(banger.RenderPanel(p))

	// Try another input the way a scientist would poke at it.
	p.DeclareInput("a", banger.Num(144))
	if err := p.Press("RUN"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nWith a = 144 the display instantly answers:", p.Display())
}
